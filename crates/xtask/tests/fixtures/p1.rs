//! P1 fixture: shared mutable state inside parallel worker closures.
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};

pub fn shares_a_cell(xs: &[u32]) -> u32 {
    let cell = RefCell::new(0u32);
    parallel_map_indexed(xs.len(), 4, |i| {
        *cell.borrow_mut() += xs[i];
        xs[i]
    });
    cell.into_inner()
}

pub fn relaxed_counter(xs: &[u32]) -> u32 {
    let n = AtomicU32::new(0);
    parallel_map_indexed(xs.len(), 4, |i| {
        n.fetch_add(xs[i], Ordering::Relaxed);
        xs[i]
    });
    n.into_inner()
}

pub fn mutates_a_capture(xs: &[u32], seen: &mut Vec<u32>) {
    std::thread::scope(|s| {
        s.spawn(|| {
            seen.push(xs[0]);
        });
    });
}

pub fn per_index_slots_are_fine(xs: &[u32], out: &mut [u32]) {
    std::thread::scope(|s| {
        for (chunk, vals) in out.chunks_mut(2).zip(xs.chunks(2)) {
            s.spawn(move || {
                for (slot, x) in chunk.iter_mut().zip(vals) {
                    *slot = x + 1;
                }
            });
        }
    });
}
