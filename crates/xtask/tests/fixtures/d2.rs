//! D2 fixture: entropy and wall-clock sources.
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}

pub fn system_clock() -> SystemTime {
    SystemTime::now()
}

pub fn entropy_seeded() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
