//! C1 fixture: panics in library code.

pub fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expects(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn panics(x: u32) -> u32 {
    if x == 0 {
        panic!("zero");
    }
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        super::unwraps(Some(1));
        let _ = Some(2).unwrap();
    }
}
