//! Allow-comment fixture: every would-be violation carries a reason.
use std::collections::HashMap;
use std::time::Instant;

pub fn histogram(m: &HashMap<u32, u32>) -> u64 {
    let mut n = 0u64;
    // segugio-lint: allow(D1, summation commutes so iteration order cannot matter)
    for (_, v) in m {
        n += u64::from(*v);
    }
    n
}

pub fn timed() -> f64 {
    // segugio-lint: allow(D2, reported timing only; never feeds a result)
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
