//! D3 fixture: the tracked day path reaches a wall-clock source through a
//! helper; the seeded helper is clean.

pub struct Tracker;

fn jitter() -> u64 {
    let _t = Instant::now();
    0
}

fn seeded(seed: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Tracker {
    pub fn process_day(&mut self) -> u64 {
        seeded(7) + jitter()
    }
}
