//! H4 fixture: the hot region itself is H1-clean, but a helper called
//! from its loop allocates on every iteration (helper-fn laundering).

pub struct Forest;

impl Forest {
    pub fn score(&self, xs: &[u32]) -> u32 {
        let mut acc = 0;
        for &x in xs {
            acc += launder(x);
        }
        acc + setup()
    }
}

fn launder(x: u32) -> u32 {
    let v = vec![x];
    v[0]
}

fn setup() -> u32 {
    let v: Vec<u32> = Vec::new();
    v.len() as u32
}
