//! R1 fixture: a public API reaching a panic sink through two hops.

fn leaf(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn mid(x: Option<u32>) -> u32 {
    leaf(x)
}

pub fn api(x: Option<u32>) -> u32 {
    mid(x)
}

pub fn shielded(x: Option<u32>) -> u32 {
    // segugio-lint: allow(R1, fixture: invariant documented, panic is the contract)
    x.expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panic_is_exempt() {
        super::api(Some(1)).to_string().parse::<u32>().unwrap();
    }
}
