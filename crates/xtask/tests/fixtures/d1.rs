//! D1 fixture: hash-order iteration leaking into ordered output.
use std::collections::HashMap;

pub fn leaks_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let keys: Vec<u32> = m.keys().copied().collect();
    keys
}

pub fn loops_in_order(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in m {
        out.push(*k);
    }
    out
}

pub fn sorted_is_fine(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn commutative_is_fine(m: &HashMap<u32, u32>) -> usize {
    m.values().count()
}
