//! H-family fixture: `measure` and `advance` are declared hot by the
//! test's hotpath config; `cold` repeats the same patterns undeclared.

pub struct Engine;

impl Engine {
    pub fn measure(&mut self, xs: &[u32]) -> Vec<u32> {
        for x in xs {
            let v: Vec<u32> = Vec::with_capacity(4);
            let s = format!("{x}");
            drop((v, s.len()));
        }
        let owned = xs.to_vec();
        let doubled: Vec<u32> = owned.iter().map(|x| x * 2).collect();
        doubled
    }

    pub fn advance(&mut self, xs: &[u32]) -> Vec<u32> {
        macro_rules! snap {
            ($e:expr) => {
                $e.to_vec()
            };
        }
        snap!(xs)
    }
}

pub fn cold(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for _x in xs {
        out.extend(xs.to_vec());
    }
    let v: Vec<u32> = xs.iter().copied().collect();
    drop(v);
    out
}
