//! S1 fixture: `atomic_write` is the sanctioned writer declared by the
//! test's persistence config; `save_direct` repeats the raw write
//! patterns outside it, and the test module is exempt.

use std::fs::{self, File, OpenOptions};
use std::path::Path;

pub fn save_direct(path: &Path, bytes: &[u8]) {
    let _ = fs::write(path, bytes);
    let _ = File::create(path);
    let _ = OpenOptions::new();
}

pub fn atomic_write(path: &Path, bytes: &[u8]) {
    let tmp = path.with_extension("tmp");
    let f = File::create(&tmp);
    let _ = (f, bytes);
    let _ = fs::rename(&tmp, path);
}

pub fn load(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn seed() {
        let _ = std::fs::write(std::path::Path::new("x"), b"fixture");
    }
}
