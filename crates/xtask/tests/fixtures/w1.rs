//! W1 fixture: allow comments that suppress nothing are themselves stale.
use std::collections::HashMap;

pub fn live_allow(m: &HashMap<u32, u32>) -> u64 {
    let mut n = 0u64;
    // segugio-lint: allow(D1, summation commutes so iteration order cannot matter)
    for (_, v) in m {
        n += u64::from(*v);
    }
    n
}

pub fn stale_allow() -> u32 {
    // segugio-lint: allow(D2, nothing on the next line reads a clock)
    7
}

pub fn doc_text_is_ignored() -> u32 {
    // The syntax is `segugio-lint: allow(RULE, reason)` — not a real rule.
    9
}
