//! C2 fixture: `as` numeric casts in parser code.

pub fn truncates(n: usize) -> u32 {
    n as u32
}

pub fn widens(n: u16) -> u64 {
    n as u64
}

pub fn checked(n: usize) -> Option<u32> {
    u32::try_from(n).ok()
}
