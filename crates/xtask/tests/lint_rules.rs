//! Integration tests for the linter: each rule fires exactly on its
//! fixture, the committed ratchet baseline matches the current tree, and
//! the CLI exit codes behave end to end on an injected-violation tree.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::rules::{classify, lint_file, ALL_RULES};
use xtask::scan::scan;
use xtask::workspace::workspace_root;
use xtask::{baseline, lint_tree, run_lint, LintOptions};

fn all_rules() -> BTreeSet<String> {
    ALL_RULES.iter().map(|s| s.to_string()).collect()
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as though it lived at `as_path`, returning `(rule, line)`
/// pairs in report order.
fn fire(name: &str, as_path: &str) -> Vec<(&'static str, u32)> {
    lint_file(&classify(as_path), &scan(&fixture(name)), &all_rules())
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn d1_fixture_fires_exactly() {
    // Line 5: `m.keys()` collected into an ordered Vec with no sort.
    // Line 11: `for … in m` observing hash order directly.
    // The sorted and commutative functions must not fire.
    assert_eq!(
        fire("d1.rs", "crates/eval/src/d1.rs"),
        vec![("D1", 5), ("D1", 11)]
    );
}

#[test]
fn d2_fixture_fires_exactly() {
    assert_eq!(
        fire("d2.rs", "crates/core/src/d2.rs"),
        vec![("D2", 5), ("D2", 10), ("D2", 14)]
    );
    // The bench crate is D2-exempt: timing is its purpose.
    assert_eq!(fire("d2.rs", "crates/bench/src/lib.rs"), vec![]);
}

#[test]
fn c1_fixture_fires_exactly() {
    // unwrap, expect, panic! — but never inside the #[cfg(test)] module.
    assert_eq!(
        fire("c1.rs", "crates/ml/src/c1.rs"),
        vec![("C1", 4), ("C1", 8), ("C1", 13)]
    );
    // C1 only covers ingest/graph/core/ml library code.
    assert_eq!(fire("c1.rs", "crates/eval/src/c1.rs"), vec![]);
}

#[test]
fn c2_fixture_fires_exactly() {
    assert_eq!(
        fire("c2.rs", "crates/ingest/src/c2.rs"),
        vec![("C2", 4), ("C2", 8)]
    );
    // C2 only covers ingest parsers.
    assert_eq!(fire("c2.rs", "crates/core/src/c2.rs"), vec![]);
}

#[test]
fn allow_comments_suppress_with_reasons() {
    assert_eq!(fire("allows.rs", "crates/core/src/allows.rs"), vec![]);
    // The same code without its allow comments must fire — proving the
    // comments (not the patterns) are what suppresses.
    let stripped: String = fixture("allows.rs")
        .lines()
        .filter(|l| !l.trim_start().starts_with("// segugio-lint:"))
        .map(|l| format!("{l}\n"))
        .collect();
    let fired = lint_file(
        &classify("crates/core/src/allows.rs"),
        &scan(&stripped),
        &all_rules(),
    );
    let rules: Vec<&str> = fired.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["D1", "D2"], "{fired:?}");
}

#[test]
fn p1_fixture_fires_exactly() {
    // borrow_mut inside the closure, a Relaxed atomic op, and a push on a
    // captured Vec; the disjoint per-index slot pattern must not fire.
    assert_eq!(
        fire("p1.rs", "crates/core/src/p1.rs"),
        vec![("P1", 8), ("P1", 17), ("P1", 26)]
    );
}

#[test]
fn p2_fixture_fires_exactly() {
    // Shared float accumulators fire P2 (both literal-inferred and
    // annotated); the integer accumulator is a plain P1 capture mutation;
    // the ordered-buffer serial reduce is the sanctioned pattern.
    assert_eq!(
        fire("p2.rs", "crates/core/src/p2.rs"),
        vec![("P2", 9), ("P2", 18), ("P1", 27)]
    );
}

#[test]
fn u1_fixture_fires_exactly() {
    assert_eq!(fire("u1.rs", "crates/core/src/u1.rs"), vec![("U1", 4)]);
}

#[test]
fn w1_fixture_fires_exactly() {
    // Only the allow that suppresses nothing fires; the live D1 allow and
    // the doc-text `allow(RULE, …)` illustration are spared.
    assert_eq!(fire("w1.rs", "crates/core/src/w1.rs"), vec![("W1", 14)]);
}

#[test]
fn clean_fixture_is_silent_everywhere() {
    for path in [
        "crates/core/src/clean.rs",
        "crates/ingest/src/clean.rs",
        "crates/eval/src/clean.rs",
        "suite/clean.rs",
    ] {
        assert_eq!(fire("clean.rs", path), vec![], "path {path}");
    }
}

/// The committed baseline must exactly describe the current tree: no
/// violations beyond it (the ratchet would fail CI) and no stale entries
/// (fixed violations must tighten the ratchet before merging).
#[test]
fn committed_baseline_exactly_matches_tree() {
    let root = workspace_root();
    let report = lint_tree(&root, &all_rules()).unwrap();
    let path = root.join("lint-baseline.toml");
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let base = baseline::parse(&text).unwrap();
    let ratchet = baseline::compare(&base, &report.counts);
    assert!(
        ratchet.grown.is_empty(),
        "tree has violations beyond the committed baseline: {:?}",
        ratchet.grown
    );
    assert!(
        ratchet.stale.is_empty(),
        "committed baseline is stale — run `cargo run -p xtask -- lint --update-baseline`: {:?}",
        ratchet.stale
    );
}

// --- end-to-end exit codes on a synthetic tree ---------------------------

const CLEAN_LIB: &str = "pub fn f() -> u32 { 7 }\n";
const ONE_VIOLATION: &str = "pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
";
const TWO_VIOLATIONS: &str = "pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
pub fn later() -> std::time::Instant {
    std::time::Instant::now()
}
";

fn synthetic_tree(name: &str, lib_src: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("lib.rs"), lib_src).unwrap();
    root
}

fn opts(root: &Path) -> LintOptions {
    LintOptions {
        root: root.to_path_buf(),
        ..LintOptions::default()
    }
}

#[test]
fn exit_codes_clean_injected_and_ratchet() {
    let root = synthetic_tree("lint-e2e", CLEAN_LIB);

    // Clean tree, no baseline file: exit 0.
    assert_eq!(run_lint(&opts(&root)), 0);

    // Injected violation with no baseline: exit 1.
    fs::write(root.join("crates/core/src/lib.rs"), ONE_VIOLATION).unwrap();
    assert_eq!(run_lint(&opts(&root)), 1);

    // Grandfather it: --update-baseline exits 0 and the check then passes.
    let update = LintOptions {
        update_baseline: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&update), 0);
    assert_eq!(run_lint(&opts(&root)), 0);

    // Growth past the baselined count is rejected by the ratchet.
    fs::write(root.join("crates/core/src/lib.rs"), TWO_VIOLATIONS).unwrap();
    assert_eq!(run_lint(&opts(&root)), 1);

    // Fixing everything passes, but leaves the baseline entry stale:
    // tolerated by default, rejected under --strict.
    fs::write(root.join("crates/core/src/lib.rs"), CLEAN_LIB).unwrap();
    assert_eq!(run_lint(&opts(&root)), 0);
    let strict = LintOptions {
        strict: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&strict), 1);

    // Re-baselining shrinks the file and strict mode passes again.
    let update = LintOptions {
        update_baseline: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&update), 0);
    assert_eq!(run_lint(&strict), 0);
}

// --- the shared exit-code table, pinned through the real binary ----------

fn xtask(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask")
}

#[test]
fn exit_code_table_is_pinned_end_to_end() {
    let root = synthetic_tree("exit-table", CLEAN_LIB);
    let root_str = root.to_str().unwrap();

    // 0 clean — for lint and audit alike.
    assert_eq!(xtask(&["lint", "--root", root_str]).status.code(), Some(0));
    assert_eq!(xtask(&["audit", "--root", root_str]).status.code(), Some(0));

    // help documents the table and exits 0.
    let help = xtask(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    let text = String::from_utf8_lossy(&help.stdout);
    for needle in [
        "EXIT CODES",
        "0    clean",
        "1    violations",
        "2    usage",
        "3    io",
    ] {
        assert!(text.contains(needle), "help is missing `{needle}`:\n{text}");
    }

    // 1 violations — beyond the (absent) baseline.
    fs::write(root.join("crates/core/src/lib.rs"), ONE_VIOLATION).unwrap();
    assert_eq!(xtask(&["lint", "--root", root_str]).status.code(), Some(1));
    assert_eq!(xtask(&["audit", "--root", root_str]).status.code(), Some(1));

    // Audit is always strict: a stale baseline entry also exits 1 where
    // plain lint tolerates it.
    assert_eq!(
        xtask(&["lint", "--root", root_str, "--update-baseline"])
            .status
            .code(),
        Some(0)
    );
    fs::write(root.join("crates/core/src/lib.rs"), CLEAN_LIB).unwrap();
    assert_eq!(xtask(&["lint", "--root", root_str]).status.code(), Some(0));
    assert_eq!(xtask(&["audit", "--root", root_str]).status.code(), Some(1));

    // 2 usage — unknown task, unknown flag, malformed rule list.
    assert_eq!(xtask(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(xtask(&["lint", "--bogus"]).status.code(), Some(2));
    assert_eq!(xtask(&["audit", "--rules", "Z9"]).status.code(), Some(2));
    assert_eq!(xtask(&[]).status.code(), Some(2));

    // 3 io — unreadable tree.
    let missing = root.join("no-such-dir");
    let missing = missing.to_str().unwrap();
    assert_eq!(xtask(&["lint", "--root", missing]).status.code(), Some(3));
    assert_eq!(xtask(&["audit", "--root", missing]).status.code(), Some(3));
}

#[test]
fn baseline_growth_prints_a_diff_style_message() {
    let root = synthetic_tree("diff-style", ONE_VIOLATION);
    let out = xtask(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--- lint-baseline.toml"), "{text}");
    assert!(text.contains("+++ working tree"), "{text}");
    assert!(
        text.contains("+ D2 crates/core/src/lib.rs: 1 violations (baseline 0)"),
        "{text}"
    );
}

// --- audit: deterministic JSON report ------------------------------------

#[test]
fn audit_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let root_str = root.to_str().unwrap();
    let a = xtask(&["audit", "--json", "--root", root_str]);
    let b = xtask(&["audit", "--json", "--root", root_str]);
    assert_eq!(
        a.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout, "audit --json must be deterministic");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("\"schema\": \"segugio-audit/4\""), "{text}");
    assert!(text.contains("\"clean\": true"), "{text}");
}

#[test]
fn audit_out_writes_the_report_file() {
    let root = synthetic_tree("audit-out", CLEAN_LIB);
    let out_path = root.join("audit.json");
    let status = xtask(&[
        "audit",
        "--root",
        root.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert_eq!(status.status.code(), Some(0));
    let json = fs::read_to_string(&out_path).unwrap();
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
}

// --- A1 end to end: a deliberate layering violation ----------------------

/// Builds a tree whose `graph` crate illegally reaches up into `eval`,
/// both in its manifest and in source.
fn layered_tree(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/xtask")).unwrap();
    fs::write(
        root.join("crates/xtask/layering.toml"),
        "[layers]\neval = \"model graph\"\ngraph = \"model\"\nmodel = \"\"\n",
    )
    .unwrap();
    for (krate, deps) in [
        ("model", ""),
        ("eval", "segugio-model = { path = \"../model\" }\n"),
        (
            "graph",
            "segugio-model = { path = \"../model\" }\nsegugio-eval = { path = \"../eval\" }\n",
        ),
    ] {
        let dir = root.join("crates").join(krate);
        fs::create_dir_all(dir.join("src")).unwrap();
        fs::write(
            dir.join("Cargo.toml"),
            format!("[package]\nname = \"segugio-{krate}\"\n\n[dependencies]\n{deps}"),
        )
        .unwrap();
        fs::write(dir.join("src/lib.rs"), "pub fn f() -> u32 { 7 }\n").unwrap();
    }
    fs::write(
        root.join("crates/graph/src/lib.rs"),
        "use segugio_eval::f;\npub fn g() -> u32 { f() }\n",
    )
    .unwrap();
    root
}

#[test]
fn layering_violations_fire_in_manifest_and_source() {
    let root = layered_tree("layering-e2e");
    let report = lint_tree(&root, &all_rules()).unwrap();
    let fired: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();
    assert_eq!(
        fired,
        vec![
            ("A1", "crates/graph/Cargo.toml", 6),
            ("A1", "crates/graph/src/lib.rs", 1),
        ],
        "{:?}",
        report.violations
    );
    assert_eq!(run_lint(&opts(&root)), 1);
}

#[test]
fn undeclared_crates_must_join_the_dag() {
    let root = layered_tree("layering-undeclared");
    let dir = root.join("crates/rogue");
    fs::create_dir_all(dir.join("src")).unwrap();
    fs::write(
        dir.join("Cargo.toml"),
        "[package]\nname = \"segugio-rogue\"\n",
    )
    .unwrap();
    fs::write(dir.join("src/lib.rs"), "pub fn f() -> u32 { 7 }\n").unwrap();
    let report = lint_tree(&root, &all_rules()).unwrap();
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "A1" && v.file == "crates/rogue/Cargo.toml" && v.line == 1),
        "{:?}",
        report.violations
    );
}

#[test]
fn stale_a1_allows_fire_w1_at_tree_level() {
    let root = layered_tree("layering-stale-allow");
    // Legal edge (eval -> model) carrying a pointless A1 allow: the allow
    // suppresses nothing, so W1 must flag it even though A1 itself only
    // runs at tree level.
    fs::write(
        root.join("crates/eval/src/lib.rs"),
        "// segugio-lint: allow(A1, this edge is legal so this comment is stale)\nuse segugio_model::f;\npub fn g() -> u32 { f() }\n",
    )
    .unwrap();
    // Make the graph crate legal so only the stale allow remains.
    fs::write(
        root.join("crates/graph/Cargo.toml"),
        "[package]\nname = \"segugio-graph\"\n\n[dependencies]\nsegugio-model = { path = \"../model\" }\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/graph/src/lib.rs"),
        "pub fn f() -> u32 { 7 }\n",
    )
    .unwrap();
    let report = lint_tree(&root, &all_rules()).unwrap();
    let fired: Vec<(&str, &str, u32)> = report
        .violations
        .iter()
        .map(|v| (v.rule, v.file.as_str(), v.line))
        .collect();
    assert_eq!(
        fired,
        vec![("W1", "crates/eval/src/lib.rs", 1)],
        "{:?}",
        report.violations
    );
    // And the suppression inventory reports it as unused.
    let stale: Vec<_> = report.suppressions.iter().filter(|s| !s.used).collect();
    assert_eq!(stale.len(), 1, "{:?}", report.suppressions);
    assert_eq!(stale[0].rule, "A1");
}
