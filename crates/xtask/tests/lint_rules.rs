//! Integration tests for the linter: each rule fires exactly on its
//! fixture, the committed ratchet baseline matches the current tree, and
//! the CLI exit codes behave end to end on an injected-violation tree.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use xtask::rules::{classify, lint_file, ALL_RULES};
use xtask::scan::scan;
use xtask::workspace::workspace_root;
use xtask::{baseline, lint_tree, run_lint, LintOptions};

fn all_rules() -> BTreeSet<String> {
    ALL_RULES.iter().map(|s| s.to_string()).collect()
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture as though it lived at `as_path`, returning `(rule, line)`
/// pairs in report order.
fn fire(name: &str, as_path: &str) -> Vec<(&'static str, u32)> {
    lint_file(&classify(as_path), &scan(&fixture(name)), &all_rules())
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn d1_fixture_fires_exactly() {
    // Line 5: `m.keys()` collected into an ordered Vec with no sort.
    // Line 11: `for … in m` observing hash order directly.
    // The sorted and commutative functions must not fire.
    assert_eq!(
        fire("d1.rs", "crates/eval/src/d1.rs"),
        vec![("D1", 5), ("D1", 11)]
    );
}

#[test]
fn d2_fixture_fires_exactly() {
    assert_eq!(
        fire("d2.rs", "crates/core/src/d2.rs"),
        vec![("D2", 5), ("D2", 10), ("D2", 14)]
    );
    // The bench crate is D2-exempt: timing is its purpose.
    assert_eq!(fire("d2.rs", "crates/bench/src/lib.rs"), vec![]);
}

#[test]
fn c1_fixture_fires_exactly() {
    // unwrap, expect, panic! — but never inside the #[cfg(test)] module.
    assert_eq!(
        fire("c1.rs", "crates/ml/src/c1.rs"),
        vec![("C1", 4), ("C1", 8), ("C1", 13)]
    );
    // C1 only covers ingest/graph/core/ml library code.
    assert_eq!(fire("c1.rs", "crates/eval/src/c1.rs"), vec![]);
}

#[test]
fn c2_fixture_fires_exactly() {
    assert_eq!(
        fire("c2.rs", "crates/ingest/src/c2.rs"),
        vec![("C2", 4), ("C2", 8)]
    );
    // C2 only covers ingest parsers.
    assert_eq!(fire("c2.rs", "crates/core/src/c2.rs"), vec![]);
}

#[test]
fn allow_comments_suppress_with_reasons() {
    assert_eq!(fire("allows.rs", "crates/core/src/allows.rs"), vec![]);
    // The same code without its allow comments must fire — proving the
    // comments (not the patterns) are what suppresses.
    let stripped: String = fixture("allows.rs")
        .lines()
        .filter(|l| !l.trim_start().starts_with("// segugio-lint:"))
        .map(|l| format!("{l}\n"))
        .collect();
    let fired = lint_file(
        &classify("crates/core/src/allows.rs"),
        &scan(&stripped),
        &all_rules(),
    );
    let rules: Vec<&str> = fired.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["D1", "D2"], "{fired:?}");
}

#[test]
fn clean_fixture_is_silent_everywhere() {
    for path in [
        "crates/core/src/clean.rs",
        "crates/ingest/src/clean.rs",
        "crates/eval/src/clean.rs",
        "suite/clean.rs",
    ] {
        assert_eq!(fire("clean.rs", path), vec![], "path {path}");
    }
}

/// The committed baseline must exactly describe the current tree: no
/// violations beyond it (the ratchet would fail CI) and no stale entries
/// (fixed violations must tighten the ratchet before merging).
#[test]
fn committed_baseline_exactly_matches_tree() {
    let root = workspace_root();
    let report = lint_tree(&root, &all_rules()).unwrap();
    let path = root.join("lint-baseline.toml");
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let base = baseline::parse(&text).unwrap();
    let ratchet = baseline::compare(&base, &report.counts);
    assert!(
        ratchet.grown.is_empty(),
        "tree has violations beyond the committed baseline: {:?}",
        ratchet.grown
    );
    assert!(
        ratchet.stale.is_empty(),
        "committed baseline is stale — run `cargo run -p xtask -- lint --update-baseline`: {:?}",
        ratchet.stale
    );
}

// --- end-to-end exit codes on a synthetic tree ---------------------------

const CLEAN_LIB: &str = "pub fn f() -> u32 { 7 }\n";
const ONE_VIOLATION: &str = "pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
";
const TWO_VIOLATIONS: &str = "pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
pub fn later() -> std::time::Instant {
    std::time::Instant::now()
}
";

fn synthetic_tree(name: &str, lib_src: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    let src = root.join("crates/core/src");
    fs::create_dir_all(&src).unwrap();
    fs::write(src.join("lib.rs"), lib_src).unwrap();
    root
}

fn opts(root: &Path) -> LintOptions {
    LintOptions {
        root: root.to_path_buf(),
        ..LintOptions::default()
    }
}

#[test]
fn exit_codes_clean_injected_and_ratchet() {
    let root = synthetic_tree("lint-e2e", CLEAN_LIB);

    // Clean tree, no baseline file: exit 0.
    assert_eq!(run_lint(&opts(&root)), 0);

    // Injected violation with no baseline: exit 1.
    fs::write(root.join("crates/core/src/lib.rs"), ONE_VIOLATION).unwrap();
    assert_eq!(run_lint(&opts(&root)), 1);

    // Grandfather it: --update-baseline exits 0 and the check then passes.
    let update = LintOptions {
        update_baseline: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&update), 0);
    assert_eq!(run_lint(&opts(&root)), 0);

    // Growth past the baselined count is rejected by the ratchet.
    fs::write(root.join("crates/core/src/lib.rs"), TWO_VIOLATIONS).unwrap();
    assert_eq!(run_lint(&opts(&root)), 1);

    // Fixing everything passes, but leaves the baseline entry stale:
    // tolerated by default, rejected under --strict.
    fs::write(root.join("crates/core/src/lib.rs"), CLEAN_LIB).unwrap();
    assert_eq!(run_lint(&opts(&root)), 0);
    let strict = LintOptions {
        strict: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&strict), 1);

    // Re-baselining shrinks the file and strict mode passes again.
    let update = LintOptions {
        update_baseline: true,
        ..opts(&root)
    };
    assert_eq!(run_lint(&update), 0);
    assert_eq!(run_lint(&strict), 0);
}
