//! The 11 statistical domain features (paper Section II-A3).
//!
//! | # | group | feature |
//! |---|-------|---------|
//! | 0 | F1 machine behavior | fraction of known-infected queriers `m = |I|/|S|` |
//! | 1 | F1 machine behavior | fraction of unknown queriers `u = |U|/|S|` |
//! | 2 | F1 machine behavior | total querier count `t = |S|` |
//! | 3 | F2 domain activity | FQD active days in the past `n` days |
//! | 4 | F2 domain activity | FQD consecutive-day streak ending today |
//! | 5 | F2 domain activity | e2LD active days in the past `n` days |
//! | 6 | F2 domain activity | e2LD consecutive-day streak ending today |
//! | 7 | F3 IP abuse | fraction of resolved IPs previously used by known malware domains |
//! | 8 | F3 IP abuse | fraction of resolved /24s previously used by known malware domains |
//! | 9 | F3 IP abuse | resolved IPs used by unknown domains in the window |
//! | 10 | F3 IP abuse | resolved /24s used by unknown domains in the window |

use segugio_graph::{BehaviorGraph, DomainIdx, HiddenLabelView, MachineIdx};
use segugio_model::Label;
use segugio_pdns::{AbuseIndex, ActivityStore};

/// Number of features per domain.
pub const FEATURE_COUNT: usize = 11;

/// Human-readable feature names, indexed like the feature vector.
pub const FEATURE_NAMES: [&str; FEATURE_COUNT] = [
    "f1.infected_fraction",
    "f1.unknown_fraction",
    "f1.total_machines",
    "f2.fqd_active_days",
    "f2.fqd_streak",
    "f2.e2ld_active_days",
    "f2.e2ld_streak",
    "f3.malware_ip_fraction",
    "f3.malware_prefix_fraction",
    "f3.unknown_ips",
    "f3.unknown_prefixes",
];

/// The three feature groups, used by the ablation experiments (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureGroup {
    /// F1 — who queries the domain.
    MachineBehavior,
    /// F2 — how long and how consistently the domain has been active.
    DomainActivity,
    /// F3 — whether its resolved IP space was previously abused.
    IpAbuse,
}

impl FeatureGroup {
    /// The feature-vector columns belonging to this group.
    pub fn columns(self) -> &'static [usize] {
        match self {
            FeatureGroup::MachineBehavior => &[0, 1, 2],
            FeatureGroup::DomainActivity => &[3, 4, 5, 6],
            FeatureGroup::IpAbuse => &[7, 8, 9, 10],
        }
    }

    /// All groups.
    pub fn all() -> [FeatureGroup; 3] {
        [
            FeatureGroup::MachineBehavior,
            FeatureGroup::DomainActivity,
            FeatureGroup::IpAbuse,
        ]
    }

    /// The columns remaining when this group is *removed* — the "No X"
    /// configurations of the feature analysis.
    pub fn complement_columns(self) -> Vec<usize> {
        let drop = self.columns();
        (0..FEATURE_COUNT).filter(|c| !drop.contains(c)).collect()
    }
}

/// Feature-measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Domain-activity lookback `n` in days (paper: 14).
    pub activity_days: u32,
    /// IP-abuse lookback `W` in days (paper: 5 months ≈ 150).
    pub abuse_window_days: u32,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            activity_days: 14,
            abuse_window_days: 150,
        }
    }
}

/// Measures feature vectors for domains of one day snapshot.
#[derive(Debug, Clone, Copy)]
pub struct FeatureExtractor<'a> {
    graph: &'a BehaviorGraph,
    activity: &'a ActivityStore,
    abuse: &'a AbuseIndex,
    config: FeatureConfig,
}

impl<'a> FeatureExtractor<'a> {
    /// Creates an extractor over one day's labeled graph and its history
    /// stores.
    pub fn new(
        graph: &'a BehaviorGraph,
        activity: &'a ActivityStore,
        abuse: &'a AbuseIndex,
        config: FeatureConfig,
    ) -> Self {
        FeatureExtractor {
            graph,
            activity,
            abuse,
            config,
        }
    }

    /// Features of an *unknown* (to-be-classified) domain, using the
    /// graph's labels as they stand.
    pub fn measure(&self, d: DomainIdx) -> [f32; FEATURE_COUNT] {
        self.measure_with(d, |m| self.graph.machine_label(m))
    }

    /// Features of a *known* (training) domain, measured under the
    /// label-hiding view so its own ground truth cannot leak into the
    /// vector.
    pub fn measure_hidden(&self, view: &HiddenLabelView<'_>) -> [f32; FEATURE_COUNT] {
        self.measure_with(view.hidden_domain(), |m| view.machine_label(m))
    }

    /// Recomputes only the domain-activity features (F2, columns 3–6) of
    /// `d`, writing them into `out` and leaving the other columns alone.
    ///
    /// The incremental engine reuses cached F1/F3 columns for domains whose
    /// neighborhood and IP history did not change, but the activity lookback
    /// window shifts every day, so these four columns are always refreshed.
    pub fn measure_activity(&self, d: DomainIdx, out: &mut [f32; FEATURE_COUNT]) {
        let day = self.graph.day();
        let n = self.config.activity_days;
        let window = day.lookback(n);
        let id = self.graph.domain_id(d);
        let e2ld = self.graph.domain_e2ld(d);
        out[3] = self.activity.fqd_active_days(id, window) as f32;
        out[4] = self.activity.fqd_streak_ending(id, day, n) as f32;
        out[5] = self.activity.e2ld_active_days(e2ld, window) as f32;
        out[6] = self.activity.e2ld_streak_ending(e2ld, day, n) as f32;
    }

    fn measure_with<F>(&self, d: DomainIdx, machine_label: F) -> [f32; FEATURE_COUNT]
    where
        F: Fn(MachineIdx) -> Label,
    {
        let mut out = [0.0f32; FEATURE_COUNT];

        // --- F1: machine behavior ---
        let mut total = 0u32;
        let mut infected = 0u32;
        let mut unknown = 0u32;
        for m in self.graph.machines_of(d) {
            total += 1;
            match machine_label(m) {
                Label::Malware => infected += 1,
                Label::Unknown => unknown += 1,
                Label::Benign => {}
            }
        }
        if total > 0 {
            out[0] = infected as f32 / total as f32;
            out[1] = unknown as f32 / total as f32;
        }
        out[2] = total as f32;

        // --- F2: domain activity ---
        self.measure_activity(d, &mut out);

        // --- F3: IP abuse ---
        let ips = self.graph.domain_ips(d);
        if !ips.is_empty() {
            let mut mal_ip = 0u32;
            let mut mal_pfx = 0u32;
            let mut unk_ip = 0u32;
            let mut unk_pfx = 0u32;
            for &ip in ips {
                if self.abuse.is_malware_ip(ip) {
                    mal_ip += 1;
                }
                if self.abuse.is_malware_prefix(ip.prefix24()) {
                    mal_pfx += 1;
                }
                if self.abuse.unknown_domains_on_ip(ip) > 0 {
                    unk_ip += 1;
                }
                if self.abuse.unknown_domains_on_prefix(ip.prefix24()) > 0 {
                    unk_pfx += 1;
                }
            }
            let k = ips.len() as f32;
            out[7] = mal_ip as f32 / k;
            out[8] = mal_pfx as f32 / k;
            out[9] = unk_ip as f32;
            out[10] = unk_pfx as f32;
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_graph::labeling::apply_seed_labels;
    use segugio_graph::GraphBuilder;
    use segugio_model::{Day, DayWindow, DomainId, E2ldId, Ipv4, MachineId};
    use segugio_pdns::PassiveDns;

    /// Unknown domain 30 queried by {M1 (malware), M2 (malware), M3
    /// (unknown), M4 (benign)}; resolved to one abused IP and one clean IP.
    fn setup() -> (BehaviorGraph, ActivityStore, AbuseIndex) {
        let mut b = GraphBuilder::new(Day(20));
        // Known malware domain 10 makes M1, M2 malware.
        b.add_query(MachineId(1), DomainId(10));
        b.add_query(MachineId(2), DomainId(10));
        // Benign domain 20.
        for m in 1..=4 {
            b.add_query(MachineId(m), DomainId(20));
        }
        // Unknown domain 31 makes M3 unknown.
        b.add_query(MachineId(3), DomainId(31));
        // Target unknown domain 30 queried by all four.
        for m in 1..=4 {
            b.add_query(MachineId(m), DomainId(30));
        }
        for d in [10u32, 20, 30, 31] {
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let abused = Ipv4::from_octets(45, 0, 0, 9);
        let clean = Ipv4::from_octets(16, 0, 0, 9);
        b.add_resolution(DomainId(30), abused);
        b.add_resolution(DomainId(30), clean);
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d == DomainId(10), |e| e == E2ldId(20));

        let mut act = ActivityStore::new();
        // Domain 30 active days 18..=20 (streak 3), e2LD same.
        for day in 18..=20 {
            act.record(DomainId(30), E2ldId(30), Day(day));
        }
        // Plus an isolated active day outside the streak.
        act.record(DomainId(30), E2ldId(30), Day(10));

        let mut pdns = PassiveDns::new();
        // The abused IP was used by known-malware domain 10 historically.
        pdns.record(DomainId(10), abused, Day(5));
        // An unknown domain 99 also used the abused IP's /24.
        pdns.record(DomainId(99), Ipv4::from_octets(45, 0, 0, 77), Day(6));
        let abuse = AbuseIndex::build(&pdns, DayWindow::new(Day(0), Day(20)), |d| {
            if d == DomainId(10) {
                Label::Malware
            } else {
                Label::Unknown
            }
        });
        (g, act, abuse)
    }

    #[test]
    fn f1_machine_behavior() {
        let (g, act, abuse) = setup();
        let ex = FeatureExtractor::new(&g, &act, &abuse, FeatureConfig::default());
        let d30 = g.domain_idx(DomainId(30)).unwrap();
        let f = ex.measure(d30);
        assert!((f[0] - 0.5).abs() < 1e-6, "2 of 4 queriers infected");
        // M4 queries the unknown target domain, so it cannot be labeled
        // benign: for an unknown domain, u is always 1 - m.
        assert!((f[1] - 0.5).abs() < 1e-6, "2 of 4 queriers unknown");
        assert_eq!(f[2], 4.0);
    }

    #[test]
    fn f2_domain_activity() {
        let (g, act, abuse) = setup();
        let ex = FeatureExtractor::new(&g, &act, &abuse, FeatureConfig::default());
        let d30 = g.domain_idx(DomainId(30)).unwrap();
        let f = ex.measure(d30);
        assert_eq!(f[3], 4.0, "active days 10,18,19,20 inside 14-day lookback");
        assert_eq!(f[4], 3.0, "streak 18..20");
        assert_eq!(f[5], 4.0);
        assert_eq!(f[6], 3.0);
    }

    #[test]
    fn f3_ip_abuse() {
        let (g, act, abuse) = setup();
        let ex = FeatureExtractor::new(&g, &act, &abuse, FeatureConfig::default());
        let d30 = g.domain_idx(DomainId(30)).unwrap();
        let f = ex.measure(d30);
        assert!((f[7] - 0.5).abs() < 1e-6, "1 of 2 IPs malware-abused");
        assert!((f[8] - 0.5).abs() < 1e-6, "1 of 2 prefixes malware-abused");
        assert_eq!(f[9], 0.0, "no resolved IP used by unknown domains");
        assert_eq!(f[10], 1.0, "the abused /24 also hosted an unknown domain");
    }

    #[test]
    fn hidden_measurement_drops_self_contribution() {
        let (g, act, abuse) = setup();
        let ex = FeatureExtractor::new(&g, &act, &abuse, FeatureConfig::default());
        let d10 = g.domain_idx(DomainId(10)).unwrap();
        // Unhidden, d10's queriers are all malware (because of d10 itself).
        let raw = ex.measure(d10);
        assert_eq!(raw[0], 1.0);
        // Hidden, both M1 and M2 lose their only malware domain.
        let view = HiddenLabelView::new(&g, d10);
        let hid = ex.measure_hidden(&view);
        assert_eq!(hid[0], 0.0);
        assert_eq!(hid[1], 1.0, "both queriers become unknown");
    }

    #[test]
    fn degenerate_domain_without_ips_or_activity() {
        let (g, act, abuse) = setup();
        let ex = FeatureExtractor::new(&g, &act, &abuse, FeatureConfig::default());
        let d31 = g.domain_idx(DomainId(31)).unwrap();
        let f = ex.measure(d31);
        assert_eq!(f[2], 1.0);
        assert_eq!(f[3], 0.0);
        assert_eq!(f[7], 0.0);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn group_columns_partition_the_vector() {
        let mut all: Vec<usize> = FeatureGroup::all()
            .iter()
            .flat_map(|g| g.columns().iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..FEATURE_COUNT).collect::<Vec<_>>());
        assert_eq!(
            FeatureGroup::MachineBehavior.complement_columns(),
            vec![3, 4, 5, 6, 7, 8, 9, 10]
        );
        assert_eq!(FEATURE_NAMES.len(), FEATURE_COUNT);
    }
}
