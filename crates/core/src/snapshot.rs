//! One labeled, pruned day of traffic, ready for feature measurement.

use std::collections::HashSet;

use segugio_graph::labeling::apply_labels_with;
use segugio_graph::{BehaviorGraph, EdgeRuns, GraphBuilder, PruneStats};
use segugio_model::{Blacklist, Day, DomainId, DomainTable, Ipv4, Label, MachineId, Whitelist};
use segugio_pdns::{AbuseIndex, PassiveDns};

use crate::config::SegugioConfig;

/// The raw ingredients of a day snapshot.
///
/// The query log and resolutions come from the monitoring point (in this
/// reproduction, `segugio_traffic::DayTraffic`); the blacklist/whitelist are
/// the ground-truth seeds *known as of that day*; `hidden` optionally names
/// domains whose ground truth must be concealed (the test sets of the
/// evaluation protocol, Section IV-A).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotInput<'a> {
    /// The observation day.
    pub day: Day,
    /// `(machine, domain)` query observations.
    pub queries: &'a [(MachineId, DomainId)],
    /// Per-domain resolved IPs for the day.
    pub resolutions: &'a [(DomainId, Vec<Ipv4>)],
    /// The domain interner shared with the traffic source.
    pub table: &'a DomainTable,
    /// Passive-DNS history (for the IP-abuse index).
    pub pdns: &'a PassiveDns,
    /// The C&C blacklist; only entries added on or before `day` are used.
    pub blacklist: &'a Blacklist,
    /// The popularity whitelist (e2LD level).
    pub whitelist: &'a Whitelist,
    /// Domains whose ground truth is hidden (labeled `unknown` no matter
    /// what the seed lists say).
    pub hidden: Option<&'a HashSet<DomainId>>,
}

impl<'a> SnapshotInput<'a> {
    /// Returns the label the seed lists assign to `domain` on this day,
    /// honoring the hidden set.
    pub fn seed_label(&self, domain: DomainId) -> Label {
        if self.hidden.is_some_and(|h| h.contains(&domain)) {
            return Label::Unknown;
        }
        if self.blacklist.contains_as_of(domain, self.day) {
            return Label::Malware;
        }
        if self.whitelist.contains(self.table.e2ld_of(domain)) {
            return Label::Benign;
        }
        Label::Unknown
    }
}

/// A labeled, pruned behavior graph plus the abuse index scoped to its day.
#[derive(Debug, Clone)]
pub struct DaySnapshot {
    /// The pruned, labeled graph.
    pub graph: BehaviorGraph,
    /// The IP-abuse index over the `W`-day window preceding the day.
    pub abuse: AbuseIndex,
    /// What pruning removed.
    pub prune_stats: PruneStats,
    /// Graph statistics *before* pruning, as `(machines, domains, edges)` —
    /// the paper's Table I counts.
    pub unpruned_counts: (usize, usize, usize),
    /// Domain label counts before pruning `(malware, benign, unknown)`.
    pub unpruned_domain_labels: (usize, usize, usize),
    /// Machine label counts before pruning `(malware, benign, unknown)`.
    pub unpruned_machine_labels: (usize, usize, usize),
}

impl DaySnapshot {
    /// The snapshot's observation day.
    pub fn day(&self) -> Day {
        self.graph.day()
    }

    /// Builds the snapshot: graph construction, annotation, labeling,
    /// pruning, and the abuse index.
    pub fn build(input: &SnapshotInput<'_>, config: &SegugioConfig) -> Self {
        let graph = build_unpruned_graph(input, config);
        Self::from_unpruned_graph(graph, input, config)
    }

    /// Builds the snapshot from an already-accumulated chunk-run edge set
    /// via the streamed counting-sort CSR path, without ever materializing
    /// the day's edges in one buffer. `input.queries` is ignored (it may be
    /// empty); the query edges come from `runs`.
    ///
    /// Bit-for-bit identical to [`build`](Self::build) over the same edge
    /// set; peak memory is bounded by the run capacity, not the edge count.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from re-reading runs spilled to the scratch
    /// file.
    pub fn build_from_runs(
        input: &SnapshotInput<'_>,
        runs: &EdgeRuns,
        config: &SegugioConfig,
    ) -> std::io::Result<Self> {
        let graph = GraphBuilder::from_runs(input.day, runs, input.resolutions, |d| {
            input.table.e2ld_of(d)
        })?;
        Ok(Self::from_unpruned_graph(graph, input, config))
    }

    /// Finishes a snapshot around an unpruned graph built elsewhere (the
    /// chunked path above, or a caller streaming its own accumulation):
    /// abuse index, labeling, optional probe filter, and pruning — shared
    /// verbatim with [`build`](Self::build).
    pub fn from_unpruned_graph(
        graph: BehaviorGraph,
        input: &SnapshotInput<'_>,
        config: &SegugioConfig,
    ) -> Self {
        // IP-abuse index over the W days preceding the snapshot day,
        // labeled with the same (hidden-aware) seed labels.
        let window = input
            .day
            .lookback_exclusive(config.features.abuse_window_days);
        let abuse = AbuseIndex::build(input.pdns, window, |d| input.seed_label(d));
        finish_snapshot(graph, abuse, input, config)
    }
}

/// Builds the day's *unpruned, unlabeled* graph with its annotations — the
/// part of [`DaySnapshot::build`] that the incremental engine replaces with
/// a [`DeltaBuilder`](segugio_graph::DeltaBuilder) advance.
pub(crate) fn build_unpruned_graph(
    input: &SnapshotInput<'_>,
    config: &SegugioConfig,
) -> BehaviorGraph {
    if let Some(capacity) = config.chunk_run_capacity {
        let mut runs = EdgeRuns::with_run_capacity(capacity);
        runs.extend(input.queries.iter().copied());
        let built = GraphBuilder::from_runs(input.day, &runs, input.resolutions, |d| {
            input.table.e2ld_of(d)
        });
        if let Ok(graph) = built {
            return graph;
        }
        // Scratch-file I/O failed; the queries are still resident in
        // `input`, so the in-memory path below is an exact fallback.
    }
    let mut builder = GraphBuilder::new(input.day);
    builder.set_parallelism(config.effective_parallelism());
    builder.add_queries(input.queries.iter().copied());
    for (d, ips) in input.resolutions {
        builder.set_e2ld(*d, input.table.e2ld_of(*d));
        for &ip in ips {
            builder.add_resolution(*d, ip);
        }
    }
    // Domains that appear in queries but not in resolutions still need
    // their e2LD annotation.
    for &(_, d) in input.queries {
        builder.set_e2ld(d, input.table.e2ld_of(d));
    }
    builder.build()
}

/// Labels, filters and prunes an unpruned day graph into a [`DaySnapshot`]
/// around an already-built abuse index. Shared verbatim by the from-scratch
/// and incremental paths so their snapshots are bit-for-bit identical.
pub(crate) fn finish_snapshot(
    mut graph: BehaviorGraph,
    abuse: AbuseIndex,
    input: &SnapshotInput<'_>,
    config: &SegugioConfig,
) -> DaySnapshot {
    // Labeling (with hidden-set override).
    apply_labels_with(&mut graph, |id, e2ld| {
        if input.hidden.is_some_and(|h| h.contains(&id)) {
            Label::Unknown
        } else if input.blacklist.contains_as_of(id, input.day) {
            Label::Malware
        } else if input.whitelist.contains(e2ld) {
            Label::Benign
        } else {
            Label::Unknown
        }
    });
    let unpruned_counts = (
        graph.machine_count(),
        graph.domain_count(),
        graph.edge_count(),
    );
    let unpruned_domain_labels = graph.domain_label_counts();
    let unpruned_machine_labels = graph.machine_label_counts();

    // Optional anti-scanner filter (Section VI heuristic).
    let graph = match config.probe_filter {
        Some(max_degree) => graph.without_probing_machines(max_degree).0,
        None => graph,
    };

    // Pruning.
    let (graph, prune_stats) = graph.prune(&config.prune);

    DaySnapshot {
        graph,
        abuse,
        prune_stats,
        unpruned_counts,
        unpruned_domain_labels,
        unpruned_machine_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_model::DomainName;

    fn table_with(names: &[&str]) -> (DomainTable, Vec<DomainId>) {
        let mut t = DomainTable::new();
        let ids = names
            .iter()
            .map(|n| t.intern(&DomainName::parse(n).unwrap()))
            .collect();
        (t, ids)
    }

    #[test]
    fn seed_label_respects_hidden_set() {
        let (table, ids) = table_with(&["evil.example", "www.good.example"]);
        let mut blacklist = Blacklist::new();
        blacklist.insert(ids[0], Day(1));
        let mut whitelist = Whitelist::new();
        whitelist.insert(table.e2ld_of(ids[1]));
        let hidden: HashSet<DomainId> = [ids[0]].into_iter().collect();
        let pdns = PassiveDns::new();

        let base = SnapshotInput {
            day: Day(5),
            queries: &[],
            resolutions: &[],
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        assert_eq!(base.seed_label(ids[0]), Label::Malware);
        assert_eq!(base.seed_label(ids[1]), Label::Benign);

        let hiding = SnapshotInput {
            hidden: Some(&hidden),
            ..base
        };
        assert_eq!(hiding.seed_label(ids[0]), Label::Unknown);
        assert_eq!(hiding.seed_label(ids[1]), Label::Benign);

        // Blacklist entries from the future are not yet known.
        let early = SnapshotInput {
            day: Day(0),
            ..base
        };
        assert_eq!(early.seed_label(ids[0]), Label::Unknown);
    }

    #[test]
    fn probe_filter_removes_scanners() {
        let (table, ids) = table_with(&[
            "evil0.example",
            "evil1.example",
            "evil2.example",
            "evil3.example",
        ]);
        let mut blacklist = Blacklist::new();
        for &d in &ids {
            blacklist.insert(d, Day(0));
        }
        let whitelist = Whitelist::new();
        let pdns = PassiveDns::new();
        // Machine 0 probes all four blacklisted domains; machines 1-3 are
        // ordinary victims querying one each (plus each other for degree).
        let mut queries = vec![];
        for &d in &ids {
            queries.push((MachineId(0), d));
        }
        for m in 1..=3u32 {
            queries.push((MachineId(m), ids[0]));
            queries.push((MachineId(m), ids[1]));
        }
        let mut config = SegugioConfig {
            probe_filter: Some(3),
            ..SegugioConfig::default()
        };
        config.prune.min_machine_degree = 0;
        config.prune.popular_fraction = 2.0;
        let input = SnapshotInput {
            day: Day(1),
            queries: &queries,
            resolutions: &[],
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let snap = DaySnapshot::build(&input, &config);
        assert!(
            snap.graph.machine_idx(MachineId(0)).is_none(),
            "prober removed"
        );
        assert!(snap.graph.machine_idx(MachineId(1)).is_some());
    }

    #[test]
    fn chunked_paths_match_in_memory_build() {
        let (table, ids) = table_with(&["evil.example", "www.good.example", "other.example"]);
        let mut blacklist = Blacklist::new();
        blacklist.insert(ids[0], Day(0));
        let mut whitelist = Whitelist::new();
        whitelist.insert(table.e2ld_of(ids[1]));
        let pdns = PassiveDns::new();
        let mut queries = Vec::new();
        for m in 0..6u32 {
            for d in &ids {
                queries.push((MachineId(m), *d));
            }
        }
        let resolutions: Vec<(DomainId, Vec<Ipv4>)> = ids
            .iter()
            .map(|&d| (d, vec![Ipv4::from_octets(10, 0, 0, d.0 as u8)]))
            .collect();
        let input = SnapshotInput {
            day: Day(3),
            queries: &queries,
            resolutions: &resolutions,
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let mut config = SegugioConfig::default();
        config.prune.min_machine_degree = 2;
        config.prune.popular_fraction = 2.0;
        let reference = DaySnapshot::build(&input, &config);

        // Capacity 4 forces several sealed (spilled) runs out of 18 edges.
        let chunked = SegugioConfig {
            chunk_run_capacity: Some(4),
            ..config.clone()
        };
        let via_config = DaySnapshot::build(&input, &chunked);

        let mut runs = EdgeRuns::with_run_capacity(4);
        runs.extend(queries.iter().copied());
        let empty_queries = SnapshotInput {
            queries: &[],
            ..input
        };
        let via_runs = DaySnapshot::build_from_runs(&empty_queries, &runs, &config).unwrap();

        for snap in [&via_config, &via_runs] {
            assert_eq!(
                format!("{:?}", reference.graph),
                format!("{:?}", snap.graph)
            );
            assert_eq!(reference.unpruned_counts, snap.unpruned_counts);
            assert_eq!(
                format!("{:?}", reference.prune_stats),
                format!("{:?}", snap.prune_stats)
            );
        }
    }

    #[test]
    fn build_labels_and_prunes() {
        let (table, ids) = table_with(&[
            "evil.example",
            "www.good.example",
            "other.example",
            "second.example",
        ]);
        let mut blacklist = Blacklist::new();
        blacklist.insert(ids[0], Day(0));
        let mut whitelist = Whitelist::new();
        whitelist.insert(table.e2ld_of(ids[1]));
        let pdns = PassiveDns::new();

        // 8 machines, each querying all 4 domains; the config below relaxes
        // R1's degree threshold so they survive pruning.
        let mut queries = Vec::new();
        for m in 0..8u32 {
            for d in &ids {
                queries.push((MachineId(m), *d));
            }
        }
        let resolutions: Vec<(DomainId, Vec<Ipv4>)> = ids
            .iter()
            .map(|&d| (d, vec![Ipv4::from_octets(10, 0, 0, d.0 as u8)]))
            .collect();
        let input = SnapshotInput {
            day: Day(3),
            queries: &queries,
            resolutions: &resolutions,
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let mut config = SegugioConfig::default();
        // 4 domains per machine would all be pruned by R1's default (<=5);
        // relax for this small fixture.
        config.prune.min_machine_degree = 2;
        // Every machine queries every benign domain in this fixture, so the
        // too-popular rule R4 would empty it; disable R4 here.
        config.prune.popular_fraction = 2.0;
        let snap = DaySnapshot::build(&input, &config);
        assert_eq!(snap.unpruned_counts.0, 8);
        assert_eq!(snap.unpruned_counts.1, 4);
        assert_eq!(snap.unpruned_domain_labels.0, 1, "one malware domain");
        assert_eq!(snap.unpruned_domain_labels.1, 1, "one benign domain");
        let d0 = snap.graph.domain_idx(ids[0]).unwrap();
        assert_eq!(snap.graph.domain_label(d0), Label::Malware);
        // All machines query the malware domain → all labeled malware.
        assert_eq!(snap.unpruned_machine_labels.0, 8);
    }
}
