//! Multi-day tracking: the deployment loop as a library type.
//!
//! Segugio's goal is to *track* infections day over day — retrain each
//! morning on the latest blacklist knowledge, calibrate an operating
//! threshold, report new detections, and record when the blacklist later
//! confirms them. [`Tracker`] packages that loop (the `isp_deployment`
//! example and the Fig. 11 experiment are both instances of it).
//!
//! With [`SegugioConfig::incremental`] on (the default), consecutive days
//! are processed through the [`IncrementalEngine`]: the behavior graph is
//! delta-built from yesterday's, the abuse index rolls its window forward
//! by one day, and unchanged domains reuse yesterday's feature rows. The
//! reports are bit-for-bit identical to the from-scratch path either way.

use std::collections::BTreeMap;

use segugio_ml::RocCurve;
use segugio_model::{Day, DomainId, MachineId};
use segugio_pdns::ActivityStore;

use crate::config::SegugioConfig;
use crate::error::{TrackerError, TrainError};
use crate::incremental::IncrementalEngine;
use crate::model::Detection;
use crate::parallel::parallel_map_indexed;
use crate::snapshot::{DaySnapshot, SnapshotInput};
use crate::trainer::{build_training_set, Segugio};

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Detector configuration used every day.
    pub segugio: SegugioConfig,
    /// Target false-positive rate for the daily threshold, calibrated on
    /// the training-day known domains via their hidden-label scores.
    pub target_fpr: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            segugio: SegugioConfig::default(),
            target_fpr: 0.005,
        }
    }
}

/// One day's tracking outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The processed day.
    pub day: Day,
    /// Domains newly flagged today (not flagged on any earlier day).
    pub new_detections: Vec<Detection>,
    /// All domains at/above threshold today, including re-detections.
    pub all_detections: Vec<Detection>,
    /// Machines implicated by today's detections.
    pub implicated_machines: Vec<MachineId>,
    /// Previously flagged domains that entered the blacklist today —
    /// confirmations of earlier detections, with the original flag day.
    pub confirmed: Vec<(DomainId, Day)>,
    /// The threshold used.
    pub threshold: f32,
}

/// Tracks malware-control domains across days.
///
/// Feed one [`SnapshotInput`] per day (ascending); each call retrains on
/// the day's known labels, scores the unknowns, and reconciles earlier
/// flags against today's blacklist.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    /// Day each still-unconfirmed flagged domain was first detected.
    /// Ordered so [`Tracker::pending`] iterates deterministically.
    flagged: BTreeMap<DomainId, Day>,
    /// Confirmed detections: domain → (flagged day, confirmed day).
    confirmed: BTreeMap<DomainId, (Day, Day)>,
    days_processed: usize,
    /// Cross-day incremental state; only advanced when
    /// [`SegugioConfig::incremental`] is set.
    engine: IncrementalEngine,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of days processed so far.
    pub fn days_processed(&self) -> usize {
        self.days_processed
    }

    /// Domains currently flagged but not yet blacklist-confirmed, with
    /// their first-detection day.
    pub fn pending(&self) -> impl Iterator<Item = (DomainId, Day)> + '_ {
        self.flagged.iter().map(|(&d, &day)| (d, day))
    }

    /// Confirmed detections: `(domain, flagged_day, confirmed_day)`.
    pub fn confirmations(&self) -> impl Iterator<Item = (DomainId, Day, Day)> + '_ {
        self.confirmed.iter().map(|(&d, &(f, c))| (d, f, c))
    }

    /// Processes one day of traffic.
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::InsufficientSeeds`] if the day's graph has
    /// no known malware or no known benign domains to train on. The
    /// tracker's flag/confirmation state and day counter are left exactly
    /// as they were; the caller can skip the day and continue.
    pub fn process_day(
        &mut self,
        input: &SnapshotInput<'_>,
        activity: &ActivityStore,
        config: &TrackerConfig,
    ) -> Result<DayReport, TrackerError> {
        let day = input.day;
        let incremental = config.segugio.incremental;

        // 1. Build today's snapshot. The incremental engine advances its
        //    delta graph and rolling abuse window; the scratch path leaves
        //    the engine untouched (its next advance simply covers a larger
        //    step, which both layers handle).
        let snapshot = if incremental {
            self.engine.build_snapshot(input, &config.segugio)
        } else {
            DaySnapshot::build(input, &config.segugio)
        };

        // 2. Seed check *before* mutating any tracker state, so a
        //    no-training-data day is fully skippable.
        let (malware, benign, _) = snapshot.graph.domain_label_counts();
        if malware == 0 || benign == 0 {
            // A snapshot was built but its features will not be measured;
            // the engine's feature cache would diff against the wrong day.
            self.engine.reset_cache();
            return Err(TrackerError::InsufficientSeeds {
                day,
                malware,
                benign,
            });
        }

        // 3. Reconcile: blacklist confirmations of earlier flags.
        let mut confirmed_today = Vec::new();
        self.flagged.retain(|&domain, &mut flagged_on| {
            if input.blacklist.contains_as_of(domain, day) {
                confirmed_today.push((domain, flagged_on));
                self.confirmed.insert(domain, (flagged_on, day));
                false
            } else {
                true
            }
        });
        confirmed_today.sort_by_key(|&(d, _)| d);

        // 4. Measure features, train on today's knowledge, and calibrate
        //    the threshold on the known domains' hidden-label scores. The
        //    training set is extracted once and used for both training and
        //    calibration — feature measurement is the expensive half of
        //    the day. The incremental path measures every domain in one
        //    pass (reusing yesterday's clean rows) so the unknowns' rows
        //    are already in hand when scoring.
        let map_train_err =
            |TrainError::InsufficientSeeds { malware, benign }| TrackerError::InsufficientSeeds {
                day,
                malware,
                benign,
            };
        let (model, threshold, scored) = if incremental {
            let features = self
                .engine
                .measure_day(&snapshot, activity, &config.segugio);
            let model =
                Segugio::train_prepared(&features.train, &config.segugio).map_err(map_train_err)?;
            let threshold = Self::calibrate(&model, &features.train, config);
            let scored = model.score_rows(&features.unknown_ids, &features.unknown_rows);
            (model, threshold, Some(scored))
        } else {
            let (train_set, _) = build_training_set(&snapshot, activity, &config.segugio);
            let model =
                Segugio::train_prepared(&train_set, &config.segugio).map_err(map_train_err)?;
            let threshold = Self::calibrate(&model, &train_set, config);
            (model, threshold, None)
        };

        // 5. Detect.
        let scored = match scored {
            Some(scored) => scored,
            None => model.score_unknown(&snapshot, activity),
        };
        let all_detections: Vec<Detection> = scored
            .into_iter()
            .filter(|d| d.score >= threshold)
            .collect();
        let mut new_detections = Vec::new();
        for det in &all_detections {
            if !self.flagged.contains_key(&det.domain) && !self.confirmed.contains_key(&det.domain)
            {
                self.flagged.insert(det.domain, day);
                new_detections.push(*det);
            }
        }

        // 6. Implicated machines.
        let mut implicated = Vec::new();
        for det in &all_detections {
            if let Some(idx) = snapshot.graph.domain_idx(det.domain) {
                implicated.extend(
                    snapshot
                        .graph
                        .machines_of(idx)
                        .map(|m| snapshot.graph.machine_id(m)),
                );
            }
        }
        implicated.sort_unstable();
        implicated.dedup();

        self.days_processed += 1;
        Ok(DayReport {
            day,
            new_detections,
            all_detections,
            implicated_machines: implicated,
            confirmed: confirmed_today,
            threshold,
        })
    }

    /// Scores the training rows under the trained model and picks the
    /// threshold hitting the target FPR on their hidden-label scores.
    fn calibrate(
        model: &crate::model::SegugioModel,
        train_set: &segugio_ml::Dataset,
        config: &TrackerConfig,
    ) -> f32 {
        let scores = parallel_map_indexed(
            train_set.len(),
            config.segugio.effective_parallelism(),
            |i| model.score_features(train_set.row(i)),
        );
        let roc = RocCurve::from_scores(&scores, train_set.labels());
        roc.threshold_for_fpr(config.target_fpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_traffic::{IspConfig, IspNetwork};

    #[test]
    fn tracker_flags_and_confirms_across_days() {
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };

        let mut total_new = 0usize;
        let mut total_confirmed = 0usize;
        for _ in 0..6 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker
                .process_day(&input, isp.activity(), &config)
                .expect("warmed-up fixture seeds both classes");
            assert_eq!(report.day, traffic.day);
            total_new += report.new_detections.len();
            total_confirmed += report.confirmed.len();
            // New detections are a subset of all detections.
            for det in &report.new_detections {
                assert!(report.all_detections.contains(det));
            }
            // Confirmations must predate the confirming day.
            for &(_, flagged_on) in &report.confirmed {
                assert!(flagged_on < report.day);
            }
        }
        assert_eq!(tracker.days_processed(), 6);
        assert!(total_new > 0, "tracker must flag something over six days");
        // With lagged blacklisting and agility, some flags get confirmed.
        assert!(
            total_confirmed > 0,
            "expected blacklist confirmations of earlier flags"
        );
        // Confirmed + pending partition the flag space.
        let pending = tracker.pending().count();
        let confirmed = tracker.confirmations().count();
        assert_eq!(confirmed, total_confirmed);
        assert!(pending > 0 || total_new == total_confirmed);
    }

    #[test]
    fn tracker_never_reflags_confirmed_domains() {
        let mut isp = IspNetwork::new(IspConfig::tiny(56));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut seen_new: std::collections::HashSet<DomainId> = Default::default();
        for _ in 0..5 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker
                .process_day(&input, isp.activity(), &config)
                .expect("warmed-up fixture seeds both classes");
            for det in &report.new_detections {
                assert!(
                    seen_new.insert(det.domain),
                    "domain {} flagged as new twice",
                    det.domain
                );
            }
        }
    }

    /// The incremental and from-scratch paths must produce identical
    /// reports, day after day, on identical traffic.
    #[test]
    fn incremental_and_scratch_reports_match() {
        // Two networks with the same seed generate identical traffic.
        let mut isp_a = IspNetwork::new(IspConfig::tiny(55));
        let mut isp_b = IspNetwork::new(IspConfig::tiny(55));
        isp_a.warm_up(16);
        isp_b.warm_up(16);
        let mut fast = Tracker::new();
        let mut slow = Tracker::new();
        let fast_config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut slow_config = fast_config.clone();
        slow_config.segugio.incremental = false;
        assert!(
            fast_config.segugio.incremental,
            "incremental is the default"
        );

        for _ in 0..5 {
            let ta = isp_a.next_day();
            let tb = isp_b.next_day();
            let ia = SnapshotInput {
                day: ta.day,
                queries: &ta.queries,
                resolutions: &ta.resolutions,
                table: isp_a.table(),
                pdns: isp_a.pdns(),
                blacklist: isp_a.commercial_blacklist(),
                whitelist: isp_a.whitelist(),
                hidden: None,
            };
            let ib = SnapshotInput {
                day: tb.day,
                queries: &tb.queries,
                resolutions: &tb.resolutions,
                table: isp_b.table(),
                pdns: isp_b.pdns(),
                blacklist: isp_b.commercial_blacklist(),
                whitelist: isp_b.whitelist(),
                hidden: None,
            };
            let ra = fast
                .process_day(&ia, isp_a.activity(), &fast_config)
                .expect("seeds present");
            let rb = slow
                .process_day(&ib, isp_b.activity(), &slow_config)
                .expect("seeds present");
            assert_eq!(ra, rb, "day {} reports diverged", ta.day);
        }
    }

    /// A day without both seed classes is a typed, skippable error that
    /// leaves the tracker untouched.
    #[test]
    fn seedless_day_is_a_typed_error() {
        use segugio_model::{Blacklist, DomainTable, Whitelist};
        use segugio_pdns::PassiveDns;

        let table = DomainTable::new();
        let blacklist = Blacklist::new();
        let whitelist = Whitelist::new();
        let pdns = PassiveDns::new();
        let activity = ActivityStore::new();
        let input = SnapshotInput {
            day: Day(3),
            queries: &[],
            resolutions: &[],
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let mut tracker = Tracker::new();
        let err = tracker
            .process_day(&input, &activity, &TrackerConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            TrackerError::InsufficientSeeds {
                day: Day(3),
                malware: 0,
                benign: 0,
            }
        );
        assert_eq!(tracker.days_processed(), 0);
        assert_eq!(tracker.pending().count(), 0);
    }
}
