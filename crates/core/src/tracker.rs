//! Multi-day tracking: the deployment loop as a library type.
//!
//! Segugio's goal is to *track* infections day over day — retrain each
//! morning on the latest blacklist knowledge, calibrate an operating
//! threshold, report new detections, and record when the blacklist later
//! confirms them. [`Tracker`] packages that loop (the `isp_deployment`
//! example and the Fig. 11 experiment are both instances of it).

use std::collections::BTreeMap;

use segugio_ml::RocCurve;
use segugio_model::{Day, DomainId, MachineId};
use segugio_pdns::ActivityStore;

use crate::config::SegugioConfig;
use crate::model::Detection;
use crate::snapshot::{DaySnapshot, SnapshotInput};
use crate::trainer::{build_training_set, Segugio};

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Detector configuration used every day.
    pub segugio: SegugioConfig,
    /// Target false-positive rate for the daily threshold, calibrated on
    /// the training-day known domains via their hidden-label scores.
    pub target_fpr: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            segugio: SegugioConfig::default(),
            target_fpr: 0.005,
        }
    }
}

/// One day's tracking outcome.
#[derive(Debug, Clone)]
pub struct DayReport {
    /// The processed day.
    pub day: Day,
    /// Domains newly flagged today (not flagged on any earlier day).
    pub new_detections: Vec<Detection>,
    /// All domains at/above threshold today, including re-detections.
    pub all_detections: Vec<Detection>,
    /// Machines implicated by today's detections.
    pub implicated_machines: Vec<MachineId>,
    /// Previously flagged domains that entered the blacklist today —
    /// confirmations of earlier detections, with the original flag day.
    pub confirmed: Vec<(DomainId, Day)>,
    /// The threshold used.
    pub threshold: f32,
}

/// Tracks malware-control domains across days.
///
/// Feed one [`SnapshotInput`] per day (ascending); each call retrains on
/// the day's known labels, scores the unknowns, and reconciles earlier
/// flags against today's blacklist.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    /// Day each still-unconfirmed flagged domain was first detected.
    /// Ordered so [`Tracker::pending`] iterates deterministically.
    flagged: BTreeMap<DomainId, Day>,
    /// Confirmed detections: domain → (flagged day, confirmed day).
    confirmed: BTreeMap<DomainId, (Day, Day)>,
    days_processed: usize,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of days processed so far.
    pub fn days_processed(&self) -> usize {
        self.days_processed
    }

    /// Domains currently flagged but not yet blacklist-confirmed, with
    /// their first-detection day.
    pub fn pending(&self) -> impl Iterator<Item = (DomainId, Day)> + '_ {
        self.flagged.iter().map(|(&d, &day)| (d, day))
    }

    /// Confirmed detections: `(domain, flagged_day, confirmed_day)`.
    pub fn confirmations(&self) -> impl Iterator<Item = (DomainId, Day, Day)> + '_ {
        self.confirmed.iter().map(|(&d, &(f, c))| (d, f, c))
    }

    /// Processes one day of traffic.
    ///
    /// # Panics
    ///
    /// Panics if the day's graph has no known malware or benign domains to
    /// train on (same condition as [`Segugio::train`]).
    pub fn process_day(
        &mut self,
        input: &SnapshotInput<'_>,
        activity: &ActivityStore,
        config: &TrackerConfig,
    ) -> DayReport {
        let day = input.day;

        // 1. Reconcile: blacklist confirmations of earlier flags.
        let mut confirmed_today = Vec::new();
        self.flagged.retain(|&domain, &mut flagged_on| {
            if input.blacklist.contains_as_of(domain, day) {
                confirmed_today.push((domain, flagged_on));
                self.confirmed.insert(domain, (flagged_on, day));
                false
            } else {
                true
            }
        });
        confirmed_today.sort_by_key(|&(d, _)| d);

        // 2. Train on today's knowledge and calibrate the threshold on the
        //    known domains' hidden-label scores. The training set is
        //    extracted once and used for both training and calibration —
        //    feature measurement is the expensive half of the day.
        let snapshot = DaySnapshot::build(input, &config.segugio);
        let (train_set, _) = build_training_set(&snapshot, activity, &config.segugio);
        let model = Segugio::train_prepared(&train_set, &config.segugio);
        let scores: Vec<f32> = (0..train_set.len())
            .map(|i| model.score_features(train_set.row(i)))
            .collect();
        let roc = RocCurve::from_scores(&scores, train_set.labels());
        let threshold = roc.threshold_for_fpr(config.target_fpr);

        // 3. Detect.
        let all_detections: Vec<Detection> = model
            .score_unknown(&snapshot, activity)
            .into_iter()
            .filter(|d| d.score >= threshold)
            .collect();
        let mut new_detections = Vec::new();
        for det in &all_detections {
            if !self.flagged.contains_key(&det.domain) && !self.confirmed.contains_key(&det.domain)
            {
                self.flagged.insert(det.domain, day);
                new_detections.push(*det);
            }
        }

        // 4. Implicated machines.
        let mut implicated = Vec::new();
        for det in &all_detections {
            if let Some(idx) = snapshot.graph.domain_idx(det.domain) {
                implicated.extend(
                    snapshot
                        .graph
                        .machines_of(idx)
                        .map(|m| snapshot.graph.machine_id(m)),
                );
            }
        }
        implicated.sort_unstable();
        implicated.dedup();

        self.days_processed += 1;
        DayReport {
            day,
            new_detections,
            all_detections,
            implicated_machines: implicated,
            confirmed: confirmed_today,
            threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_traffic::{IspConfig, IspNetwork};

    #[test]
    fn tracker_flags_and_confirms_across_days() {
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };

        let mut total_new = 0usize;
        let mut total_confirmed = 0usize;
        for _ in 0..6 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker.process_day(&input, isp.activity(), &config);
            assert_eq!(report.day, traffic.day);
            total_new += report.new_detections.len();
            total_confirmed += report.confirmed.len();
            // New detections are a subset of all detections.
            for det in &report.new_detections {
                assert!(report.all_detections.contains(det));
            }
            // Confirmations must predate the confirming day.
            for &(_, flagged_on) in &report.confirmed {
                assert!(flagged_on < report.day);
            }
        }
        assert_eq!(tracker.days_processed(), 6);
        assert!(total_new > 0, "tracker must flag something over six days");
        // With lagged blacklisting and agility, some flags get confirmed.
        assert!(
            total_confirmed > 0,
            "expected blacklist confirmations of earlier flags"
        );
        // Confirmed + pending partition the flag space.
        let pending = tracker.pending().count();
        let confirmed = tracker.confirmations().count();
        assert_eq!(confirmed, total_confirmed);
        assert!(pending > 0 || total_new == total_confirmed);
    }

    #[test]
    fn tracker_never_reflags_confirmed_domains() {
        let mut isp = IspNetwork::new(IspConfig::tiny(56));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut seen_new: std::collections::HashSet<DomainId> = Default::default();
        for _ in 0..5 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker.process_day(&input, isp.activity(), &config);
            for det in &report.new_detections {
                assert!(
                    seen_new.insert(det.domain),
                    "domain {} flagged as new twice",
                    det.domain
                );
            }
        }
    }
}
