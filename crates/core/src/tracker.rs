//! Multi-day tracking: the deployment loop as a library type.
//!
//! Segugio's goal is to *track* infections day over day — retrain each
//! morning on the latest blacklist knowledge, calibrate an operating
//! threshold, report new detections, and record when the blacklist later
//! confirms them. [`Tracker`] packages that loop (the `isp_deployment`
//! example and the Fig. 11 experiment are both instances of it).
//!
//! With [`SegugioConfig::incremental`] on (the default), consecutive days
//! are processed through the [`IncrementalEngine`]: the behavior graph is
//! delta-built from yesterday's, the abuse index rolls its window forward
//! by one day, and unchanged domains reuse yesterday's feature rows. The
//! reports are bit-for-bit identical to the from-scratch path either way.

use std::collections::BTreeMap;

use segugio_ml::RocCurve;
use segugio_model::{Day, DomainId, MachineId};
use segugio_pdns::ActivityStore;

use crate::config::SegugioConfig;
use crate::error::{TrackerError, TrainError};
use crate::features::{FeatureGroup, FEATURE_COUNT};
use crate::incremental::IncrementalEngine;
use crate::model::{Detection, ScoreBuffer, SegugioModel};
use crate::snapshot::{DaySnapshot, SnapshotInput};
use crate::trainer::{build_training_set, Segugio};

/// Tracker configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackerConfig {
    /// Detector configuration used every day.
    pub segugio: SegugioConfig,
    /// Target false-positive rate for the daily threshold, calibrated on
    /// the training-day known domains via their hidden-label scores.
    pub target_fpr: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            segugio: SegugioConfig::default(),
            target_fpr: 0.005,
        }
    }
}

/// Which [`HealthPolicy`](crate::HealthPolicy) fallback fired on a day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degradation {
    /// The day had no trainable seeds; it was scored with the most recent
    /// retained model (and its threshold) instead of a fresh one.
    StaleModel {
        /// The day the reused model was trained on.
        trained_on: Day,
    },
    /// The day's pDNS abuse window was blank; the model was trained and
    /// scored with the IP-abuse feature group (F3) masked.
    MaskedIpFeatures,
    /// The tracker was restored from a durable checkpoint generation older
    /// than the newest one (the newer generations failed validation and
    /// were discarded). Recorded in the first report after the resume.
    RestoredFromCheckpoint {
        /// The day of the generation the state was restored from.
        day: Day,
    },
    /// A checkpoint generation failed validation during resume and was
    /// skipped. One record per discarded generation, newest first; if no
    /// generation was loadable the tracker rebuilt from scratch via the
    /// incremental reset.
    CheckpointDiscarded {
        /// The day of the discarded generation.
        day: Day,
    },
}

/// One day's tracking outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// The processed day.
    pub day: Day,
    /// Domains newly flagged today (not flagged on any earlier day).
    pub new_detections: Vec<Detection>,
    /// All domains at/above threshold today, including re-detections.
    pub all_detections: Vec<Detection>,
    /// Machines implicated by today's detections.
    pub implicated_machines: Vec<MachineId>,
    /// Previously flagged domains that entered the blacklist today —
    /// confirmations of earlier detections, with the original flag day.
    pub confirmed: Vec<(DomainId, Day)>,
    /// The threshold used.
    pub threshold: f32,
    /// Fallbacks that fired on this day; empty on a healthy day.
    pub degradation: Vec<Degradation>,
}

impl DayReport {
    /// Whether any fallback fired on this day.
    pub fn is_degraded(&self) -> bool {
        !self.degradation.is_empty()
    }
}

/// The outcome of feeding one day to a tracker: a report (possibly
/// degraded) or a typed skip. Deployment drivers collect these so an
/// operator can audit exactly which day fell back to what.
#[derive(Debug, Clone, PartialEq)]
pub enum DayOutcome {
    /// The day was processed; see [`DayReport::degradation`] for any
    /// fallbacks that fired.
    Processed(DayReport),
    /// The day could not be processed and was skipped; tracker state is
    /// unchanged.
    Skipped {
        /// The skipped day.
        day: Day,
        /// Why it was skipped.
        error: TrackerError,
    },
}

impl DayOutcome {
    /// The report, if the day was processed.
    pub fn report(&self) -> Option<&DayReport> {
        match self {
            DayOutcome::Processed(report) => Some(report),
            DayOutcome::Skipped { .. } => None,
        }
    }
}

/// A successfully trained model retained for stale-model fallback scoring.
#[derive(Debug, Clone)]
pub(crate) struct RetainedModel {
    pub(crate) model: SegugioModel,
    pub(crate) threshold: f32,
    pub(crate) trained_on: Day,
}

/// Tracks malware-control domains across days.
///
/// Feed one [`SnapshotInput`] per day (ascending); each call retrains on
/// the day's known labels, scores the unknowns, and reconciles earlier
/// flags against today's blacklist.
#[derive(Debug, Clone, Default)]
pub struct Tracker {
    /// Day each still-unconfirmed flagged domain was first detected.
    /// Ordered so [`Tracker::pending`] iterates deterministically.
    pub(crate) flagged: BTreeMap<DomainId, Day>,
    /// Confirmed detections: domain → (flagged day, confirmed day).
    pub(crate) confirmed: BTreeMap<DomainId, (Day, Day)>,
    pub(crate) days_processed: usize,
    /// Cross-day incremental state; only advanced when
    /// [`SegugioConfig::incremental`] is set.
    pub(crate) engine: IncrementalEngine,
    /// The most recent successfully trained model, for stale-model
    /// fallback scoring on seedless days.
    pub(crate) last_model: Option<RetainedModel>,
    /// The most recent successfully processed day, enforcing ascending
    /// delivery.
    pub(crate) last_day: Option<Day>,
    /// Degradation records produced outside a processed day (checkpoint
    /// resume fallbacks); drained into the front of the next
    /// [`DayReport::degradation`] so the operator log carries them.
    pub(crate) pending_degradation: Vec<Degradation>,
    /// Reusable scoring scratch: the daily scoring pass fills this instead
    /// of allocating fresh score/detection vectors every day.
    pub(crate) score_buf: ScoreBuffer,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of days processed so far.
    pub fn days_processed(&self) -> usize {
        self.days_processed
    }

    /// The most recent successfully processed day, if any. After a
    /// [`Tracker::resume`](crate::checkpoint) this is the day of the
    /// restored checkpoint generation — the caller should continue with
    /// the first later day.
    pub fn last_day(&self) -> Option<Day> {
        self.last_day
    }

    /// Domains currently flagged but not yet blacklist-confirmed, with
    /// their first-detection day.
    pub fn pending(&self) -> impl Iterator<Item = (DomainId, Day)> + '_ {
        self.flagged.iter().map(|(&d, &day)| (d, day))
    }

    /// Confirmed detections: `(domain, flagged_day, confirmed_day)`.
    pub fn confirmations(&self) -> impl Iterator<Item = (DomainId, Day, Day)> + '_ {
        self.confirmed.iter().map(|(&d, &(f, c))| (d, f, c))
    }

    /// Processes one day of traffic.
    ///
    /// Degraded inputs are handled per the configured
    /// [`HealthPolicy`](crate::HealthPolicy): a day with no trainable
    /// seeds is scored with the most recent retained model, and a day with
    /// a blank pDNS abuse window is trained/scored with the IP-abuse
    /// feature group masked. Every fallback that fired is recorded in
    /// [`DayReport::degradation`].
    ///
    /// # Errors
    ///
    /// Returns [`TrackerError::InsufficientSeeds`] if the day's graph has
    /// no known malware or no known benign domains to train on and no
    /// usable retained model exists (fallback disabled, never trained, or
    /// older than the policy's maximum age), and
    /// [`TrackerError::NonMonotonicDay`] if `input.day` is not strictly
    /// after the last processed day. Either way the tracker's
    /// flag/confirmation state and day counter are left exactly as they
    /// were; the caller can skip the day and continue.
    pub fn process_day(
        &mut self,
        input: &SnapshotInput<'_>,
        activity: &ActivityStore,
        config: &TrackerConfig,
    ) -> Result<DayReport, TrackerError> {
        let day = input.day;
        let incremental = config.segugio.incremental;
        let health = &config.segugio.health;
        let mut degradation = Vec::new();

        // 0. Days must arrive strictly ascending — an out-of-order day
        //    would corrupt the flag/confirmation timeline.
        if let Some(last) = self.last_day {
            if day <= last {
                return Err(TrackerError::NonMonotonicDay { last, got: day });
            }
        }

        // 1. Probe the day's pDNS abuse window. A blank window means the
        //    feed is out: the F3 features would be measured against
        //    nothing, and — independent of any policy — the incremental
        //    engine must not carry state across the inconsistency (its
        //    rolling index later evicts days by re-reading the *current*
        //    feed, so a blanked-then-restored feed would silently poison
        //    it). A full reset is always parity-safe: the next day is
        //    rebuilt from scratch, exactly like a fresh engine's first day.
        let window = day.lookback_exclusive(config.segugio.features.abuse_window_days);
        let pdns_blank = input.pdns.records_in(window).next().is_none();
        let effective = if pdns_blank && health.mask_ip_features_on_blank_pdns {
            let configured: Vec<usize> = config
                .segugio
                .feature_columns
                .clone()
                .unwrap_or_else(|| (0..FEATURE_COUNT).collect());
            let masked: Vec<usize> = configured
                .iter()
                .copied()
                .filter(|c| !FeatureGroup::IpAbuse.columns().contains(c))
                .collect();
            // Only mask when something is actually removed and a usable
            // column set remains.
            if masked.len() != configured.len() && !masked.is_empty() {
                degradation.push(Degradation::MaskedIpFeatures);
                let mut cfg = config.segugio.clone();
                cfg.feature_columns = Some(masked);
                Some(cfg)
            } else {
                None
            }
        } else {
            None
        };
        let train_config = effective.as_ref().unwrap_or(&config.segugio);

        // 2. Build today's snapshot. On a blank-pDNS day the incremental
        //    engine is bypassed *and* reset (see above); otherwise it
        //    advances its delta graph and rolling abuse window. The
        //    scratch path leaves the engine untouched (its next advance
        //    simply covers a larger step, which both layers handle).
        let use_engine = incremental && !pdns_blank;
        let snapshot = if use_engine {
            self.engine.build_snapshot(input, &config.segugio)
        } else {
            if incremental && pdns_blank {
                self.engine.reset();
            }
            DaySnapshot::build(input, &config.segugio)
        };

        // 3. Seed check *before* mutating any tracker state, so a
        //    no-training-data day is fully skippable. With the stale-model
        //    fallback enabled and a fresh-enough retained model, the day
        //    is scored instead of skipped.
        let (malware, benign, _) = snapshot.graph.domain_label_counts();
        let stale = if malware == 0 || benign == 0 {
            let usable = health
                .stale_model_on_insufficient_seeds
                .then_some(self.last_model.as_ref())
                .flatten()
                .filter(|m| day.0.saturating_sub(m.trained_on.0) <= health.max_model_age_days);
            match usable {
                Some(retained) => Some(retained.clone()),
                None => {
                    // A snapshot was built but its features will not be
                    // measured; the engine's feature cache would diff
                    // against the wrong day.
                    self.engine.reset_cache();
                    return Err(TrackerError::InsufficientSeeds {
                        day,
                        malware,
                        benign,
                    });
                }
            }
        } else {
            None
        };

        // 4. Reconcile: blacklist confirmations of earlier flags.
        let mut confirmed_today = Vec::new();
        self.flagged.retain(|&domain, &mut flagged_on| {
            if input.blacklist.contains_as_of(domain, day) {
                confirmed_today.push((domain, flagged_on));
                self.confirmed.insert(domain, (flagged_on, day));
                false
            } else {
                true
            }
        });
        confirmed_today.sort_by_key(|&(d, _)| d);

        // 5. Measure features, train on today's knowledge, and calibrate
        //    the threshold on the known domains' hidden-label scores. The
        //    training set is extracted once and used for both training and
        //    calibration — feature measurement is the expensive half of
        //    the day. The incremental path measures every domain in one
        //    pass (reusing yesterday's clean rows) so the unknowns' rows
        //    are already in hand when scoring. On a stale-model day there
        //    is nothing to train or calibrate: the retained model and its
        //    threshold score today's unknowns directly (the Fig. 6
        //    cross-day result is what makes that meaningful), and the
        //    engine's feature cache is reset since no measurement pass ran.
        let map_train_err =
            |TrainError::InsufficientSeeds { malware, benign }| TrackerError::InsufficientSeeds {
                day,
                malware,
                benign,
            };
        let (retain, threshold) = if let Some(retained) = stale {
            degradation.push(Degradation::StaleModel {
                trained_on: retained.trained_on,
            });
            self.engine.reset_cache();
            retained
                .model
                .score_unknown_with(&snapshot, activity, &mut self.score_buf);
            (None, retained.threshold)
        } else if use_engine {
            let features = self.engine.measure_day(&snapshot, activity, train_config);
            let model =
                Segugio::train_prepared(&features.train, train_config).map_err(map_train_err)?;
            let threshold = Self::calibrate(&model, &features.train, config, &mut self.score_buf);
            model.score_rows_with(
                &features.unknown_ids,
                &features.unknown_rows,
                &mut self.score_buf,
            );
            (Some(model), threshold)
        } else {
            let (train_set, _) = build_training_set(&snapshot, activity, train_config);
            let model = Segugio::train_prepared(&train_set, train_config).map_err(map_train_err)?;
            let threshold = Self::calibrate(&model, &train_set, config, &mut self.score_buf);
            model.score_unknown_with(&snapshot, activity, &mut self.score_buf);
            (Some(model), threshold)
        };

        // 6. Detect. The scored detections live in the reusable buffer;
        //    only those at/above threshold are copied out into the report.
        let all_detections: Vec<Detection> = self
            .score_buf
            .detections()
            .iter()
            .filter(|d| d.score >= threshold)
            .copied()
            .collect();
        let mut new_detections = Vec::new();
        for det in &all_detections {
            if !self.flagged.contains_key(&det.domain) && !self.confirmed.contains_key(&det.domain)
            {
                self.flagged.insert(det.domain, day);
                new_detections.push(*det);
            }
        }

        // 7. Implicated machines.
        let mut implicated = Vec::new();
        for det in &all_detections {
            if let Some(idx) = snapshot.graph.domain_idx(det.domain) {
                implicated.extend(
                    snapshot
                        .graph
                        .machines_of(idx)
                        .map(|m| snapshot.graph.machine_id(m)),
                );
            }
        }
        implicated.sort_unstable();
        implicated.dedup();

        // A freshly trained model is retained for stale-model fallback on
        // later seedless days; a reused stale model is *not* re-retained
        // (its training day, and hence its age, is unchanged).
        if let Some(model) = retain {
            self.last_model = Some(RetainedModel {
                model,
                threshold,
                trained_on: day,
            });
        }
        self.last_day = Some(day);
        self.days_processed += 1;
        // Checkpoint-resume records (restored-from / discarded-generation)
        // were produced before any day ran; surface them at the front of
        // the first successful report so the operator log carries them.
        if !self.pending_degradation.is_empty() {
            let mut carried = std::mem::take(&mut self.pending_degradation);
            carried.extend(degradation);
            degradation = carried;
        }
        Ok(DayReport {
            day,
            new_detections,
            all_detections,
            implicated_machines: implicated,
            confirmed: confirmed_today,
            threshold,
            degradation,
        })
    }

    /// Processes one day, folding the error path into a [`DayOutcome`]
    /// instead of a `Result` — the shape deployment drivers log.
    pub fn process_day_outcome(
        &mut self,
        input: &SnapshotInput<'_>,
        activity: &ActivityStore,
        config: &TrackerConfig,
    ) -> DayOutcome {
        match self.process_day(input, activity, config) {
            Ok(report) => DayOutcome::Processed(report),
            Err(error) => DayOutcome::Skipped {
                day: input.day,
                error,
            },
        }
    }

    /// Scores the training rows under the trained model into the reusable
    /// buffer and picks the threshold hitting the target FPR on their
    /// hidden-label scores. The buffer's score column is transient here —
    /// the day's scoring pass overwrites it right after.
    fn calibrate(
        model: &crate::model::SegugioModel,
        train_set: &segugio_ml::Dataset,
        config: &TrackerConfig,
        buf: &mut ScoreBuffer,
    ) -> f32 {
        model.score_dataset_with(train_set, buf);
        let roc = RocCurve::from_scores(buf.scores(), train_set.labels());
        roc.threshold_for_fpr(config.target_fpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_traffic::{IspConfig, IspNetwork};

    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn tracker_flags_and_confirms_across_days() {
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };

        let mut total_new = 0usize;
        let mut total_confirmed = 0usize;
        for _ in 0..6 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker
                .process_day(&input, isp.activity(), &config)
                .expect("warmed-up fixture seeds both classes");
            assert_eq!(report.day, traffic.day);
            total_new += report.new_detections.len();
            total_confirmed += report.confirmed.len();
            // New detections are a subset of all detections.
            for det in &report.new_detections {
                assert!(report.all_detections.contains(det));
            }
            // Confirmations must predate the confirming day.
            for &(_, flagged_on) in &report.confirmed {
                assert!(flagged_on < report.day);
            }
        }
        assert_eq!(tracker.days_processed(), 6);
        assert!(total_new > 0, "tracker must flag something over six days");
        // With lagged blacklisting and agility, some flags get confirmed.
        assert!(
            total_confirmed > 0,
            "expected blacklist confirmations of earlier flags"
        );
        // Confirmed + pending partition the flag space.
        let pending = tracker.pending().count();
        let confirmed = tracker.confirmations().count();
        assert_eq!(confirmed, total_confirmed);
        assert!(pending > 0 || total_new == total_confirmed);
    }

    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn tracker_never_reflags_confirmed_domains() {
        let mut isp = IspNetwork::new(IspConfig::tiny(56));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut seen_new: std::collections::HashSet<DomainId> = Default::default();
        for _ in 0..5 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker
                .process_day(&input, isp.activity(), &config)
                .expect("warmed-up fixture seeds both classes");
            for det in &report.new_detections {
                assert!(
                    seen_new.insert(det.domain),
                    "domain {} flagged as new twice",
                    det.domain
                );
            }
        }
    }

    /// The incremental and from-scratch paths must produce identical
    /// reports, day after day, on identical traffic.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn incremental_and_scratch_reports_match() {
        // Two networks with the same seed generate identical traffic.
        let mut isp_a = IspNetwork::new(IspConfig::tiny(55));
        let mut isp_b = IspNetwork::new(IspConfig::tiny(55));
        isp_a.warm_up(16);
        isp_b.warm_up(16);
        let mut fast = Tracker::new();
        let mut slow = Tracker::new();
        let fast_config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut slow_config = fast_config.clone();
        slow_config.segugio.incremental = false;
        assert!(
            fast_config.segugio.incremental,
            "incremental is the default"
        );

        for _ in 0..5 {
            let ta = isp_a.next_day();
            let tb = isp_b.next_day();
            let ia = SnapshotInput {
                day: ta.day,
                queries: &ta.queries,
                resolutions: &ta.resolutions,
                table: isp_a.table(),
                pdns: isp_a.pdns(),
                blacklist: isp_a.commercial_blacklist(),
                whitelist: isp_a.whitelist(),
                hidden: None,
            };
            let ib = SnapshotInput {
                day: tb.day,
                queries: &tb.queries,
                resolutions: &tb.resolutions,
                table: isp_b.table(),
                pdns: isp_b.pdns(),
                blacklist: isp_b.commercial_blacklist(),
                whitelist: isp_b.whitelist(),
                hidden: None,
            };
            let ra = fast
                .process_day(&ia, isp_a.activity(), &fast_config)
                .expect("seeds present");
            let rb = slow
                .process_day(&ib, isp_b.activity(), &slow_config)
                .expect("seeds present");
            assert_eq!(ra, rb, "day {} reports diverged", ta.day);
        }
    }

    /// A seedless day with a fresh retained model is scored with it, and
    /// the report records the stale-model degradation.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn stale_model_scores_seedless_day() {
        use segugio_model::Blacklist;

        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };

        // Two healthy days to retain a model.
        let mut last_threshold = 0.0f32;
        let mut last_day = Day(0);
        for _ in 0..2 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let report = tracker
                .process_day(&input, isp.activity(), &config)
                .expect("healthy day");
            assert!(report.degradation.is_empty());
            last_threshold = report.threshold;
            last_day = report.day;
        }

        // Day three arrives with an empty blacklist: no malware seeds.
        let empty_blacklist = Blacklist::new();
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: &empty_blacklist,
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("stale-model fallback must score the day");
        assert_eq!(
            report.degradation,
            vec![Degradation::StaleModel {
                trained_on: last_day
            }]
        );
        assert_eq!(report.threshold, last_threshold, "threshold is reused");
        assert_eq!(tracker.days_processed(), 3);

        // With the fallback disabled the same day is a typed error.
        let mut strict = config.clone();
        strict.segugio.health.stale_model_on_insufficient_seeds = false;
        let mut tracker2 = Tracker::new();
        let healthy = SnapshotInput {
            blacklist: isp.commercial_blacklist(),
            ..input
        };
        tracker2
            .process_day(&healthy, isp.activity(), &strict)
            .expect("healthy day trains");
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: &empty_blacklist,
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let err = tracker2
            .process_day(&input, isp.activity(), &strict)
            .unwrap_err();
        assert!(matches!(err, TrackerError::InsufficientSeeds { .. }));
    }

    /// A retained model past its maximum age is not reused.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn stale_model_expires_past_max_age() {
        use segugio_model::Blacklist;

        let mut isp = IspNetwork::new(IspConfig::tiny(57));
        isp.warm_up(16);
        let mut config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        config.segugio.health.max_model_age_days = 2;
        let mut tracker = Tracker::new();

        let traffic = isp.next_day();
        let trained_day = traffic.day;
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        tracker
            .process_day(&input, isp.activity(), &config)
            .expect("healthy day trains");

        // Skip far ahead: a seedless day 5 days later is out of range.
        let empty_blacklist = Blacklist::new();
        for _ in 0..4 {
            isp.next_day();
        }
        let traffic = isp.next_day();
        assert!(traffic.day.0 - trained_day.0 > 2);
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: &empty_blacklist,
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let err = tracker
            .process_day(&input, isp.activity(), &config)
            .unwrap_err();
        assert!(matches!(err, TrackerError::InsufficientSeeds { .. }));
    }

    /// A blank pDNS window masks the F3 feature group and records it.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn blank_pdns_day_masks_ip_features() {
        use segugio_pdns::PassiveDns;

        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };

        let blank = PassiveDns::new();
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: &blank,
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("F1+F2 are enough to train");
        assert_eq!(report.degradation, vec![Degradation::MaskedIpFeatures]);

        // The next day, with the feed restored, is healthy again — and the
        // incremental engine (reset around the blank day) still matches a
        // from-scratch tracker fed the same two days.
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("restored day");
        assert!(report.degradation.is_empty());
    }

    /// Out-of-order days are a typed error that leaves state untouched.
    #[test]
    fn non_monotonic_day_is_rejected() {
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("first delivery works");
        // Re-delivering the same day is rejected.
        let err = tracker
            .process_day(&input, isp.activity(), &config)
            .unwrap_err();
        assert_eq!(
            err,
            TrackerError::NonMonotonicDay {
                last: report.day,
                got: report.day,
            }
        );
        assert_eq!(tracker.days_processed(), 1);

        // The outcome wrapper records the skip.
        let outcome = tracker.process_day_outcome(&input, isp.activity(), &config);
        assert_eq!(
            outcome,
            DayOutcome::Skipped {
                day: report.day,
                error: err,
            }
        );
        assert!(outcome.report().is_none());
    }

    /// A day without both seed classes is a typed, skippable error that
    /// leaves the tracker untouched.
    #[test]
    fn seedless_day_is_a_typed_error() {
        use segugio_model::{Blacklist, DomainTable, Whitelist};
        use segugio_pdns::PassiveDns;

        let table = DomainTable::new();
        let blacklist = Blacklist::new();
        let whitelist = Whitelist::new();
        let pdns = PassiveDns::new();
        let activity = ActivityStore::new();
        let input = SnapshotInput {
            day: Day(3),
            queries: &[],
            resolutions: &[],
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let mut tracker = Tracker::new();
        let err = tracker
            .process_day(&input, &activity, &TrackerConfig::default())
            .unwrap_err();
        assert_eq!(
            err,
            TrackerError::InsufficientSeeds {
                day: Day(3),
                malware: 0,
                benign: 0,
            }
        );
        assert_eq!(tracker.days_processed(), 0);
        assert_eq!(tracker.pending().count(), 0);
    }
}
