//! Top-level Segugio configuration.

use segugio_graph::PruneConfig;
use segugio_ml::{BoostingConfig, ForestConfig, LogisticConfig};

use crate::features::FeatureConfig;

/// Which statistical classifier backs the model (paper Section II-A3:
/// "e.g., using Random Forest, Logistic Regression, etc.").
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierKind {
    /// Bagged random forest (the default).
    Forest(ForestConfig),
    /// L2-regularized logistic regression.
    Logistic(LogisticConfig),
    /// Gradient-boosted trees (logistic loss).
    Boosting(BoostingConfig),
}

impl Default for ClassifierKind {
    fn default() -> Self {
        ClassifierKind::Forest(ForestConfig::default())
    }
}

/// Fallback behavior when a day's inputs are degraded.
///
/// A live feed loses inputs in two recoverable ways: a day may have no
/// trainable seeds (blacklist update stalled, or traffic too thin), and the
/// passive-DNS feed may blank out. The paper justifies a graceful answer to
/// both — trained models stay accurate across days and weeks (the Fig. 6
/// cross-day result), and the feature groups are separable (the Sec. III
/// ablation trains usefully on F1+F2 without the IP-abuse group F3). The
/// defaults enable both fallbacks; on clean inputs neither condition ever
/// fires, so enabling them costs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthPolicy {
    /// On a day with no trainable seeds, score with the most recent
    /// successfully trained model (and its calibrated threshold) instead of
    /// returning [`TrackerError::InsufficientSeeds`](crate::TrackerError).
    pub stale_model_on_insufficient_seeds: bool,
    /// Maximum age, in days, a retained model may be reused at. Past this
    /// the day errors as if no model were retained (Fig. 6 shows accuracy
    /// decaying slowly but not indefinitely).
    pub max_model_age_days: u32,
    /// On a day whose pDNS abuse window is empty, train and score on
    /// feature groups F1+F2 with the IP-abuse columns (F3) masked, instead
    /// of feeding the model all-empty abuse features.
    pub mask_ip_features_on_blank_pdns: bool,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            stale_model_on_insufficient_seeds: true,
            max_model_age_days: 7,
            mask_ip_features_on_blank_pdns: true,
        }
    }
}

/// Everything Segugio needs to build snapshots, train and detect.
#[derive(Debug, Clone, PartialEq)]
pub struct SegugioConfig {
    /// Feature-measurement windows.
    pub features: FeatureConfig,
    /// Graph-pruning thresholds (R1–R4).
    pub prune: PruneConfig,
    /// Classifier backend and hyperparameters.
    pub classifier: ClassifierKind,
    /// Feature columns used by the model; `None` means all 11. The
    /// ablation experiments set this to a group's complement.
    pub feature_columns: Option<Vec<usize>>,
    /// When set, machines querying at least this many known malware domains
    /// are removed before pruning — the Section VI heuristic against
    /// security scanners that probe blacklisted names. `None` disables the
    /// filter (the paper's default deployments did not need it).
    pub probe_filter: Option<u32>,
    /// Worker threads for the per-day hot path (graph building, training-set
    /// extraction, forest training, and unknown-domain scoring). `None`
    /// uses every available core; `Some(1)` forces the exact serial path.
    /// Output is bit-for-bit identical at every setting.
    pub parallelism: Option<usize>,
    /// When set, from-scratch snapshot builds accumulate the day's query
    /// edges in fixed-capacity sorted runs of this many observations
    /// (spilled to a scratch file past the cap) and build the CSR via the
    /// streamed counting-sort merge ([`GraphBuilder::from_runs`]
    /// (segugio_graph::GraphBuilder::from_runs)) instead of the in-memory
    /// builder. Output is bit-for-bit identical; the knob only bounds the
    /// build's peak memory by the run capacity instead of the day's edge
    /// count. `None` keeps the in-memory path. A scratch-file I/O failure
    /// falls back to the in-memory builder.
    pub chunk_run_capacity: Option<usize>,
    /// Whether multi-day drivers ([`Tracker`](crate::Tracker)) carry state
    /// from day to day — delta-built graphs, a rolling abuse index, and a
    /// dirty-set feature cache — instead of rebuilding everything from
    /// scratch each morning. Outputs are bit-for-bit identical either way;
    /// the knob only trades memory for time. One-shot snapshot building
    /// ([`DaySnapshot::build`](crate::DaySnapshot::build)) has no previous
    /// day and ignores it.
    pub incremental: bool,
    /// Fallbacks for degraded days (no seeds, blank pDNS window). See
    /// [`HealthPolicy`].
    pub health: HealthPolicy,
}

impl Default for SegugioConfig {
    fn default() -> Self {
        SegugioConfig {
            features: FeatureConfig::default(),
            prune: PruneConfig::default(),
            classifier: ClassifierKind::default(),
            feature_columns: None,
            probe_filter: None,
            parallelism: None,
            chunk_run_capacity: None,
            incremental: true,
            health: HealthPolicy::default(),
        }
    }
}

impl SegugioConfig {
    /// A configuration that excludes one feature group (the paper's "No
    /// machine" / "No activity" / "No IP" ablations).
    pub fn without_group(group: crate::features::FeatureGroup) -> Self {
        SegugioConfig {
            feature_columns: Some(group.complement_columns()),
            ..SegugioConfig::default()
        }
    }

    /// The concrete worker count the [`parallelism`](Self::parallelism)
    /// knob resolves to on this machine.
    pub fn effective_parallelism(&self) -> usize {
        crate::parallel::resolve_parallelism(self.parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureGroup;

    #[test]
    fn default_uses_forest_and_all_features() {
        let c = SegugioConfig::default();
        assert!(matches!(c.classifier, ClassifierKind::Forest(_)));
        assert!(c.feature_columns.is_none());
        assert!(c.incremental, "multi-day drivers reuse state by default");
    }

    #[test]
    fn ablation_excludes_group() {
        let c = SegugioConfig::without_group(FeatureGroup::IpAbuse);
        assert_eq!(c.feature_columns, Some(vec![0, 1, 2, 3, 4, 5, 6]));
    }
}
