//! Durable checkpoint/restore for [`Tracker`]: crash-safe cross-day state.
//!
//! A production Segugio deployment is a months-long process whose value is
//! cumulative — flagged domains wait days for blacklist confirmation, the
//! incremental engine carries yesterday's CSR and feature cache, and the
//! stale-model fallback needs the last trained model. This module makes
//! that state survive process death:
//!
//! - a **versioned, checksummed text codec** ([`Tracker::save_to_string`] /
//!   [`Tracker::load_from_str`]) in the same hand-rolled line-oriented
//!   style as [`SegugioModel::save_to_string`](crate::SegugioModel): a
//!   header `segugio-checkpoint v1 <payload-bytes> <crc32-hex>` whose
//!   length field catches truncation and torn tails and whose CRC-32
//!   catches bit rot, followed by the tracker payload (flag/confirmation
//!   maps, day counters, retained model with its calibrated threshold
//!   embedded verbatim, and the incremental engine's graph + rolling-index
//!   + feature-cache state);
//! - **atomic generation files** ([`Tracker::save_checkpoint`]): each save
//!   writes `checkpoint-<day>.seg` through the shared temp-file + fsync +
//!   rename helper [`write_atomic`] (a crash at any byte leaves either the
//!   old generation or a dead `.tmp`, never a half-written live file) and
//!   prunes to the last *K* generations;
//! - **generation-fallback resume** ([`Tracker::resume`]): generations are
//!   tried newest-first; each corrupt one is skipped with a typed
//!   [`Degradation::CheckpointDiscarded`] record, an older successful load
//!   adds [`Degradation::RestoredFromCheckpoint`], and when nothing is
//!   loadable the tracker starts from scratch (the PR-4 incremental reset
//!   path) carrying only the discard records. The records surface at the
//!   front of the next [`DayReport`](crate::DayReport)'s degradation list.
//!
//! A resume from an intact newest generation is **bit-for-bit** equivalent
//! to never having stopped: the chaos suite in `segugio-eval` kills a
//! deployment at every injected crash point and asserts the resumed
//! `DayReport` stream equals the uninterrupted one.

use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use segugio_model::Day;

use crate::incremental::IncrementalEngine;
use crate::model::SegugioModel;
use crate::tracker::{Degradation, RetainedModel, Tracker};

/// How many checkpoint generations [`Tracker::save_checkpoint`] keeps by
/// default.
pub const DEFAULT_KEEP_GENERATIONS: usize = 3;

/// A typed checkpoint failure: parse errors, checksum mismatches, and the
/// IO failures of saving/resuming. Carries an optional causal chain, like
/// [`segugio_ml::ParseModelError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    message: String,
    source: Option<Box<CheckpointError>>,
}

impl CheckpointError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        CheckpointError {
            message: message.into(),
            source: None,
        }
    }

    pub(crate) fn context(self, message: impl Into<String>) -> Self {
        CheckpointError {
            message: message.into(),
            source: Some(Box::new(self)),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(source) = &self.source {
            write!(f, ": {source}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source.as_deref().map(|e| e as _)
    }
}

impl From<String> for CheckpointError {
    fn from(message: String) -> Self {
        CheckpointError::new(message)
    }
}

impl From<&str> for CheckpointError {
    fn from(message: &str) -> Self {
        CheckpointError::new(message)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled so
/// the checkpoint layer stays dependency-free like the rest of the codec.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The CRC-32 checksum embedded in (and verified against) the checkpoint
/// header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What an atomic write attempt did — [`write_atomic_with_kill`] reports
/// whether the injected crash fired before the rename committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The bytes were fully written, fsynced, and renamed into place.
    Committed,
    /// The injected kill fired mid-write: a partial `.tmp` file was left
    /// behind and the destination path was never touched.
    KilledMidWrite,
}

/// Atomically replaces `path` with `bytes`: write to a sibling `.tmp`
/// file, fsync it, rename over the destination, then fsync the directory.
/// A crash at any point leaves either the previous file intact or a dead
/// `.tmp`; readers never observe a torn live file.
///
/// This is the **only sanctioned write path** for checkpoint files — the
/// xtask `S1` lint rejects direct `fs::write`/`File::create` in declared
/// persistence modules.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    write_atomic_impl(path, bytes, None).map(|_| ())
}

/// [`write_atomic`] with a deterministic crash injected after
/// `kill_after_bytes` bytes of the temp file have been written (clamped to
/// the payload length, so a large value models a crash after the write but
/// *before* the rename). Returns [`WriteOutcome::KilledMidWrite`] without
/// touching the destination — exactly the on-disk state a real mid-write
/// `SIGKILL` leaves. The chaos suite drives this with seeded offsets from
/// `FaultInjector`.
pub fn write_atomic_with_kill(
    path: &Path,
    bytes: &[u8],
    kill_after_bytes: u64,
) -> Result<WriteOutcome, CheckpointError> {
    write_atomic_impl(path, bytes, Some(kill_after_bytes))
}

fn write_atomic_impl(
    path: &Path,
    bytes: &[u8],
    kill_after: Option<u64>,
) -> Result<WriteOutcome, CheckpointError> {
    let display = path.display();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    let mut file = File::create(&tmp)
        .map_err(|e| CheckpointError::new(format!("creating {}: {e}", tmp.display())))?;
    if let Some(kill) = kill_after {
        let kill = usize::try_from(kill).unwrap_or(usize::MAX).min(bytes.len());
        file.write_all(&bytes[..kill])
            .map_err(|e| CheckpointError::new(format!("writing {}: {e}", tmp.display())))?;
        let _ = file.sync_all();
        return Ok(WriteOutcome::KilledMidWrite);
    }
    file.write_all(bytes)
        .map_err(|e| CheckpointError::new(format!("writing {}: {e}", tmp.display())))?;
    file.sync_all()
        .map_err(|e| CheckpointError::new(format!("fsyncing {}: {e}", tmp.display())))?;
    drop(file);
    fs::rename(&tmp, path)
        .map_err(|e| CheckpointError::new(format!("renaming into {display}: {e}")))?;
    // Make the rename itself durable. Directory fsync is best-effort: some
    // filesystems refuse it, and the rename is already atomic either way.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(WriteOutcome::Committed)
}

/// Lists checkpoint generations in `dir`, newest day first.
fn list_generations(dir: &Path) -> Result<Vec<(Day, PathBuf)>, CheckpointError> {
    let entries = fs::read_dir(dir)
        .map_err(|e| CheckpointError::new(format!("reading {}: {e}", dir.display())))?;
    let mut generations = Vec::new();
    for entry in entries {
        let entry =
            entry.map_err(|e| CheckpointError::new(format!("reading {}: {e}", dir.display())))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(day) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|day| day.parse::<u32>().ok())
        else {
            continue;
        };
        generations.push((Day(day), entry.path()));
    }
    generations.sort_by_key(|&(day, _)| std::cmp::Reverse(day));
    Ok(generations)
}

fn next_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    what: &str,
) -> Result<&'a str, CheckpointError> {
    lines.next().ok_or_else(|| {
        CheckpointError::new(format!("unexpected end of checkpoint: missing {what}"))
    })
}

fn field<T: FromStr>(
    parts: &mut std::str::SplitAsciiWhitespace<'_>,
    what: &str,
) -> Result<T, CheckpointError>
where
    T::Err: fmt::Display,
{
    let token = parts
        .next()
        .ok_or_else(|| CheckpointError::new(format!("missing {what}")))?;
    token
        .parse()
        .map_err(|e| CheckpointError::new(format!("bad {what} {token:?}: {e}")))
}

fn f32_bits(
    parts: &mut std::str::SplitAsciiWhitespace<'_>,
    what: &str,
) -> Result<f32, CheckpointError> {
    let token = parts
        .next()
        .ok_or_else(|| CheckpointError::new(format!("missing {what}")))?;
    let bits = u32::from_str_radix(token, 16)
        .map_err(|e| CheckpointError::new(format!("bad {what} {token:?}: {e}")))?;
    Ok(f32::from_bits(bits))
}

fn end_of_line(
    parts: &mut std::str::SplitAsciiWhitespace<'_>,
    what: &str,
) -> Result<(), CheckpointError> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(CheckpointError::new(format!(
            "trailing token {extra:?} on {what} line"
        ))),
    }
}

impl Tracker {
    /// Serializes the complete tracker state as a self-validating text
    /// document: `segugio-checkpoint v1 <payload-bytes> <crc32-hex>`
    /// followed by the payload. [`load_from_str`](Self::load_from_str) of
    /// the result reproduces this exact string — save→load→save is a
    /// byte-identical fixed point.
    pub fn save_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut payload = String::new();
        self.write_payload(&mut payload);
        let crc = crc32(payload.as_bytes());
        let mut out = String::with_capacity(payload.len() + 48);
        let _ = writeln!(out, "segugio-checkpoint v1 {} {:08x}", payload.len(), crc);
        out.push_str(&payload);
        out
    }

    fn write_payload(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("tracker v1\n");
        let _ = write!(out, "flagged {}", self.flagged.len());
        for (&domain, &day) in &self.flagged {
            let _ = write!(out, " {} {}", domain.0, day.0);
        }
        out.push('\n');
        let _ = write!(out, "confirmed {}", self.confirmed.len());
        for (&domain, &(flagged_on, confirmed_on)) in &self.confirmed {
            let _ = write!(out, " {} {} {}", domain.0, flagged_on.0, confirmed_on.0);
        }
        out.push('\n');
        let _ = writeln!(out, "days-processed {}", self.days_processed);
        match self.last_day {
            Some(day) => {
                let _ = writeln!(out, "last-day 1 {}", day.0);
            }
            None => out.push_str("last-day 0\n"),
        }
        let _ = write!(out, "pending {}", self.pending_degradation.len());
        for record in &self.pending_degradation {
            match record {
                Degradation::StaleModel { trained_on } => {
                    let _ = write!(out, " S {}", trained_on.0);
                }
                Degradation::MaskedIpFeatures => out.push_str(" F"),
                Degradation::RestoredFromCheckpoint { day } => {
                    let _ = write!(out, " R {}", day.0);
                }
                Degradation::CheckpointDiscarded { day } => {
                    let _ = write!(out, " D {}", day.0);
                }
            }
        }
        out.push('\n');
        match &self.last_model {
            Some(retained) => {
                let text = retained.model.save_to_string();
                let _ = writeln!(
                    out,
                    "model 1 {:08x} {} {}",
                    retained.threshold.to_bits(),
                    retained.trained_on.0,
                    text.lines().count()
                );
                out.push_str(&text);
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
            None => out.push_str("model 0\n"),
        }
        self.engine.write_text(out);
        out.push_str("end-tracker\n");
    }

    /// Parses a checkpoint document produced by
    /// [`save_to_string`](Self::save_to_string), verifying the header's
    /// payload length (catches truncation and torn tails) and CRC-32
    /// (catches bit flips) before touching the payload. Never panics on
    /// hostile input — every malformation is a typed [`CheckpointError`].
    pub fn load_from_str(text: &str) -> Result<Tracker, CheckpointError> {
        Self::load_from_bytes(text.as_bytes())
    }

    /// [`load_from_str`](Self::load_from_str) over raw file bytes: the
    /// header is validated before the payload is required to be UTF-8, so
    /// a bit-flipped or torn file fails the checksum, not a decode step.
    pub fn load_from_bytes(bytes: &[u8]) -> Result<Tracker, CheckpointError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| CheckpointError::new("missing checkpoint header line"))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|e| CheckpointError::new(format!("checkpoint header is not UTF-8: {e}")))?;
        let mut parts = header.split_ascii_whitespace();
        match (parts.next(), parts.next()) {
            (Some("segugio-checkpoint"), Some("v1")) => {}
            _ => {
                return Err(CheckpointError::new(format!(
                    "bad checkpoint header: {header:?}"
                )))
            }
        }
        let declared_len: usize = field(&mut parts, "payload length")?;
        let declared_crc_token = parts
            .next()
            .ok_or_else(|| CheckpointError::new("missing checksum"))?;
        let declared_crc = u32::from_str_radix(declared_crc_token, 16).map_err(|e| {
            CheckpointError::new(format!("bad checksum {declared_crc_token:?}: {e}"))
        })?;
        end_of_line(&mut parts, "header")?;
        let payload = &bytes[newline + 1..];
        if payload.len() != declared_len {
            return Err(CheckpointError::new(format!(
                "payload length mismatch: header declares {declared_len} bytes, found {} (torn or truncated write)",
                payload.len()
            )));
        }
        let actual_crc = crc32(payload);
        if actual_crc != declared_crc {
            return Err(CheckpointError::new(format!(
                "checksum mismatch: header declares {declared_crc:08x}, payload hashes to {actual_crc:08x}"
            )));
        }
        let payload = std::str::from_utf8(payload)
            .map_err(|e| CheckpointError::new(format!("checkpoint payload is not UTF-8: {e}")))?;
        Self::parse_payload(payload).map_err(|e| e.context("parsing checkpoint payload"))
    }

    fn parse_payload(payload: &str) -> Result<Tracker, CheckpointError> {
        use segugio_model::DomainId;
        let mut lines = payload.lines();
        let header = next_line(&mut lines, "tracker header")?;
        if header != "tracker v1" {
            return Err(CheckpointError::new(format!(
                "bad tracker header: {header:?}"
            )));
        }

        let line = next_line(&mut lines, "flagged line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("flagged") {
            return Err(CheckpointError::new(format!("bad flagged line: {line:?}")));
        }
        let count: usize = field(&mut parts, "flagged count")?;
        let mut flagged = std::collections::BTreeMap::new();
        for _ in 0..count {
            let domain: u32 = field(&mut parts, "flagged domain id")?;
            let day: u32 = field(&mut parts, "flagged day")?;
            if flagged.insert(DomainId(domain), Day(day)).is_some() {
                return Err(CheckpointError::new(format!(
                    "duplicate flagged domain {domain}"
                )));
            }
        }
        end_of_line(&mut parts, "flagged")?;

        let line = next_line(&mut lines, "confirmed line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("confirmed") {
            return Err(CheckpointError::new(format!(
                "bad confirmed line: {line:?}"
            )));
        }
        let count: usize = field(&mut parts, "confirmed count")?;
        let mut confirmed = std::collections::BTreeMap::new();
        for _ in 0..count {
            let domain: u32 = field(&mut parts, "confirmed domain id")?;
            let flagged_on: u32 = field(&mut parts, "confirmed flag day")?;
            let confirmed_on: u32 = field(&mut parts, "confirmed confirm day")?;
            if confirmed
                .insert(DomainId(domain), (Day(flagged_on), Day(confirmed_on)))
                .is_some()
            {
                return Err(CheckpointError::new(format!(
                    "duplicate confirmed domain {domain}"
                )));
            }
        }
        end_of_line(&mut parts, "confirmed")?;

        let line = next_line(&mut lines, "days-processed line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("days-processed") {
            return Err(CheckpointError::new(format!(
                "bad days-processed line: {line:?}"
            )));
        }
        let days_processed: usize = field(&mut parts, "days-processed count")?;
        end_of_line(&mut parts, "days-processed")?;

        let line = next_line(&mut lines, "last-day line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("last-day") {
            return Err(CheckpointError::new(format!("bad last-day line: {line:?}")));
        }
        let last_day = match parts.next() {
            Some("0") => None,
            Some("1") => Some(Day(field(&mut parts, "last day")?)),
            other => {
                return Err(CheckpointError::new(format!(
                    "bad last-day marker: {other:?}"
                )))
            }
        };
        end_of_line(&mut parts, "last-day")?;

        let line = next_line(&mut lines, "pending line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("pending") {
            return Err(CheckpointError::new(format!("bad pending line: {line:?}")));
        }
        let count: usize = field(&mut parts, "pending count")?;
        let mut pending_degradation = Vec::new();
        for _ in 0..count {
            let record = match parts.next() {
                Some("S") => Degradation::StaleModel {
                    trained_on: Day(field(&mut parts, "stale-model day")?),
                },
                Some("F") => Degradation::MaskedIpFeatures,
                Some("R") => Degradation::RestoredFromCheckpoint {
                    day: Day(field(&mut parts, "restored-from day")?),
                },
                Some("D") => Degradation::CheckpointDiscarded {
                    day: Day(field(&mut parts, "discarded day")?),
                },
                other => {
                    return Err(CheckpointError::new(format!(
                        "bad pending record tag: {other:?}"
                    )))
                }
            };
            pending_degradation.push(record);
        }
        end_of_line(&mut parts, "pending")?;

        let line = next_line(&mut lines, "model line")?;
        let mut parts = line.split_ascii_whitespace();
        if parts.next() != Some("model") {
            return Err(CheckpointError::new(format!("bad model line: {line:?}")));
        }
        let last_model = match parts.next() {
            Some("0") => {
                end_of_line(&mut parts, "model")?;
                None
            }
            Some("1") => {
                let threshold = f32_bits(&mut parts, "model threshold")?;
                let trained_on = Day(field(&mut parts, "model training day")?);
                let line_count: usize = field(&mut parts, "model line count")?;
                end_of_line(&mut parts, "model")?;
                let mut text = String::new();
                for _ in 0..line_count {
                    text.push_str(next_line(&mut lines, "embedded model line")?);
                    text.push('\n');
                }
                let model = SegugioModel::load_from_str(&text)
                    .map_err(|e| CheckpointError::new(format!("embedded model: {e}")))?;
                Some(RetainedModel {
                    model,
                    threshold,
                    trained_on,
                })
            }
            other => return Err(CheckpointError::new(format!("bad model marker: {other:?}"))),
        };

        let engine = IncrementalEngine::read_text(&mut lines).map_err(CheckpointError::new)?;

        match lines.next() {
            Some("end-tracker") => {}
            other => {
                return Err(CheckpointError::new(format!(
                    "missing end-tracker, got {other:?}"
                )))
            }
        }
        if let Some(extra) = lines.next() {
            return Err(CheckpointError::new(format!(
                "trailing content after end-tracker: {extra:?}"
            )));
        }

        Ok(Tracker {
            flagged,
            confirmed,
            days_processed,
            engine,
            last_model,
            last_day,
            pending_degradation,
            score_buf: Default::default(),
        })
    }

    /// Writes the current state as generation file `checkpoint-<day>.seg`
    /// in `dir` (created if absent) through the atomic temp+fsync+rename
    /// path, then prunes to the newest `keep` generations. Returns the
    /// path written.
    ///
    /// # Errors
    ///
    /// Fails if no day has been processed yet (there is nothing to name
    /// the generation after) or on IO failure; the previous generations
    /// are untouched in either case.
    pub fn save_checkpoint(&self, dir: &Path, keep: usize) -> Result<PathBuf, CheckpointError> {
        let day = self.last_day.ok_or_else(|| {
            CheckpointError::new("no processed day to checkpoint: the tracker is empty")
        })?;
        fs::create_dir_all(dir)
            .map_err(|e| CheckpointError::new(format!("creating {}: {e}", dir.display())))?;
        let path = dir.join(format!("checkpoint-{}.seg", day.0));
        write_atomic(&path, self.save_to_string().as_bytes())
            .map_err(|e| e.context(format!("saving checkpoint for day {}", day.0)))?;
        for (_, old) in list_generations(dir)?.into_iter().skip(keep.max(1)) {
            fs::remove_file(&old)
                .map_err(|e| CheckpointError::new(format!("pruning {}: {e}", old.display())))?;
        }
        Ok(path)
    }

    /// [`save_checkpoint`](Self::save_checkpoint) with a deterministic
    /// crash injected after `kill_after_bytes` of the temp file: the
    /// destination generation is never touched and no pruning runs,
    /// exactly as if the process had died mid-write. For the chaos suite.
    pub fn save_checkpoint_killed(
        &self,
        dir: &Path,
        kill_after_bytes: u64,
    ) -> Result<WriteOutcome, CheckpointError> {
        let day = self.last_day.ok_or_else(|| {
            CheckpointError::new("no processed day to checkpoint: the tracker is empty")
        })?;
        fs::create_dir_all(dir)
            .map_err(|e| CheckpointError::new(format!("creating {}: {e}", dir.display())))?;
        let path = dir.join(format!("checkpoint-{}.seg", day.0));
        write_atomic_with_kill(&path, self.save_to_string().as_bytes(), kill_after_bytes)
    }

    /// Restores a tracker from the newest loadable generation in `dir`.
    ///
    /// Generations are tried newest-first. A generation that fails to
    /// read, checksum, or parse is skipped with a
    /// [`Degradation::CheckpointDiscarded`] record; a successful load of
    /// anything *other than* the newest generation additionally records
    /// [`Degradation::RestoredFromCheckpoint`]. If no generation is
    /// loadable (or the directory doesn't exist yet) a fresh tracker is
    /// returned — the incremental engine rebuilds from scratch — carrying
    /// only the discard records. All records surface at the front of the
    /// next successful [`DayReport`](crate::DayReport)'s degradation list.
    ///
    /// Restoring from an intact newest generation emits **no** records:
    /// the resumed tracker is bit-for-bit the one that was saved.
    ///
    /// # Errors
    ///
    /// Only unrecoverable environment failures error — the directory
    /// exists but cannot be listed. Corrupt checkpoint *contents* never
    /// error; they degrade.
    pub fn resume(dir: &Path) -> Result<Tracker, CheckpointError> {
        if !dir.exists() {
            return Ok(Tracker::new());
        }
        let generations =
            list_generations(dir).map_err(|e| e.context("resuming from checkpoint directory"))?;
        let mut discarded: Vec<Degradation> = Vec::new();
        for (i, (day, path)) in generations.iter().enumerate() {
            let loaded = fs::read(path)
                .map_err(|e| CheckpointError::new(format!("reading {}: {e}", path.display())))
                .and_then(|bytes| Tracker::load_from_bytes(&bytes));
            match loaded {
                Ok(mut tracker) => {
                    if i > 0 {
                        tracker.pending_degradation.extend(discarded);
                        tracker
                            .pending_degradation
                            .push(Degradation::RestoredFromCheckpoint { day: *day });
                    }
                    return Ok(tracker);
                }
                Err(_) => discarded.push(Degradation::CheckpointDiscarded { day: *day }),
            }
        }
        let mut fresh = Tracker::new();
        fresh.pending_degradation = discarded;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotInput;
    use crate::tracker::TrackerConfig;
    use segugio_traffic::{IspConfig, IspNetwork};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique scratch directory per test, cleaned up on drop.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("segugio-ckpt-{}-{tag}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn run_days(isp: &mut IspNetwork, tracker: &mut Tracker, config: &TrackerConfig, n: usize) {
        for _ in 0..n {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            tracker
                .process_day(&input, isp.activity(), config)
                .expect("warmed-up fixture seeds both classes");
        }
    }

    #[test]
    fn empty_tracker_round_trips_as_fixed_point() {
        let tracker = Tracker::new();
        let text = tracker.save_to_string();
        let loaded = Tracker::load_from_str(&text).expect("valid checkpoint");
        assert_eq!(loaded.save_to_string(), text, "save→load→save fixed point");
        assert_eq!(loaded.days_processed(), 0);
        assert_eq!(loaded.last_day(), None);
    }

    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn warm_tracker_round_trips_and_continues_identically() {
        let mut isp_a = IspNetwork::new(IspConfig::tiny(55));
        let mut isp_b = IspNetwork::new(IspConfig::tiny(55));
        isp_a.warm_up(16);
        isp_b.warm_up(16);
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut original = Tracker::new();
        run_days(&mut isp_a, &mut original, &config, 3);

        // Round trip is a byte fixed point.
        let text = original.save_to_string();
        let mut resumed = Tracker::load_from_str(&text).expect("valid checkpoint");
        assert_eq!(resumed.save_to_string(), text);
        assert_eq!(resumed.days_processed(), original.days_processed());
        assert_eq!(resumed.last_day(), original.last_day());

        // Both trackers process the same further days identically.
        let mut replay = Tracker::new();
        run_days(&mut isp_b, &mut replay, &config, 3);
        for _ in 0..2 {
            let ta = isp_a.next_day();
            let tb = isp_b.next_day();
            let ia = SnapshotInput {
                day: ta.day,
                queries: &ta.queries,
                resolutions: &ta.resolutions,
                table: isp_a.table(),
                pdns: isp_a.pdns(),
                blacklist: isp_a.commercial_blacklist(),
                whitelist: isp_a.whitelist(),
                hidden: None,
            };
            let ib = SnapshotInput {
                day: tb.day,
                queries: &tb.queries,
                resolutions: &tb.resolutions,
                table: isp_b.table(),
                pdns: isp_b.pdns(),
                blacklist: isp_b.commercial_blacklist(),
                whitelist: isp_b.whitelist(),
                hidden: None,
            };
            let ra = resumed
                .process_day(&ia, isp_a.activity(), &config)
                .expect("seeds present");
            let rb = replay
                .process_day(&ib, isp_b.activity(), &config)
                .expect("seeds present");
            assert_eq!(ra, rb, "resumed and uninterrupted reports diverged");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem checkpoints are not available under Miri")]
    fn corrupt_newest_generation_falls_back_with_records() {
        let scratch = ScratchDir::new("fallback");
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut tracker = Tracker::new();
        run_days(&mut isp, &mut tracker, &config, 1);
        tracker.save_checkpoint(scratch.path(), 3).expect("save 1");
        let good_day = tracker.last_day().expect("processed");
        run_days(&mut isp, &mut tracker, &config, 1);
        let newest = tracker.save_checkpoint(scratch.path(), 3).expect("save 2");
        let bad_day = tracker.last_day().expect("processed");

        // Flip one bit in the newest generation.
        let mut bytes = fs::read(&newest).expect("read newest");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&newest, &bytes).expect("corrupt newest");

        let resumed = Tracker::resume(scratch.path()).expect("resume degrades, not errors");
        assert_eq!(resumed.last_day(), Some(good_day));
        assert_eq!(
            resumed.pending_degradation,
            vec![
                Degradation::CheckpointDiscarded { day: bad_day },
                Degradation::RestoredFromCheckpoint { day: good_day },
            ]
        );

        // The records surface at the front of the next report.
        let mut resumed = resumed;
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let report = resumed
            .process_day(&input, isp.activity(), &config)
            .expect("seeds present");
        assert_eq!(
            &report.degradation[..2],
            &[
                Degradation::CheckpointDiscarded { day: bad_day },
                Degradation::RestoredFromCheckpoint { day: good_day },
            ]
        );
        assert!(resumed.pending_degradation.is_empty(), "records drained");
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem checkpoints are not available under Miri")]
    fn all_generations_corrupt_degrades_to_fresh() {
        let scratch = ScratchDir::new("fresh");
        fs::create_dir_all(scratch.path()).expect("mkdir");
        fs::write(scratch.path().join("checkpoint-4.seg"), b"garbage").expect("seed garbage");
        fs::write(scratch.path().join("checkpoint-7.seg"), b"more garbage").expect("seed garbage");
        let resumed = Tracker::resume(scratch.path()).expect("degrades to fresh");
        assert_eq!(resumed.days_processed(), 0);
        assert_eq!(resumed.last_day(), None);
        assert_eq!(
            resumed.pending_degradation,
            vec![
                Degradation::CheckpointDiscarded { day: Day(7) },
                Degradation::CheckpointDiscarded { day: Day(4) },
            ]
        );
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem checkpoints are not available under Miri")]
    fn missing_directory_resumes_fresh_without_records() {
        let scratch = ScratchDir::new("missing");
        let resumed = Tracker::resume(scratch.path()).expect("fresh start");
        assert_eq!(resumed.days_processed(), 0);
        assert!(resumed.pending_degradation.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem checkpoints are not available under Miri")]
    fn killed_write_leaves_only_a_dead_tmp() {
        let scratch = ScratchDir::new("killed");
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut tracker = Tracker::new();
        run_days(&mut isp, &mut tracker, &config, 1);
        let outcome = tracker
            .save_checkpoint_killed(scratch.path(), 100)
            .expect("kill injection");
        assert_eq!(outcome, WriteOutcome::KilledMidWrite);
        let day = tracker.last_day().expect("processed").0;
        assert!(!scratch
            .path()
            .join(format!("checkpoint-{day}.seg"))
            .exists());
        assert!(scratch
            .path()
            .join(format!("checkpoint-{day}.seg.tmp"))
            .exists());
        // The torn tmp is invisible to resume.
        let resumed = Tracker::resume(scratch.path()).expect("fresh");
        assert_eq!(resumed.days_processed(), 0);
        assert!(resumed.pending_degradation.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "filesystem checkpoints are not available under Miri")]
    fn retention_prunes_to_newest_k() {
        let scratch = ScratchDir::new("retention");
        let mut isp = IspNetwork::new(IspConfig::tiny(55));
        isp.warm_up(16);
        let config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        let mut tracker = Tracker::new();
        let mut days = Vec::new();
        for _ in 0..5 {
            run_days(&mut isp, &mut tracker, &config, 1);
            tracker.save_checkpoint(scratch.path(), 2).expect("save");
            days.push(tracker.last_day().expect("processed").0);
        }
        let kept = list_generations(scratch.path()).expect("list");
        let kept_days: Vec<u32> = kept.iter().map(|(d, _)| d.0).collect();
        assert_eq!(kept_days, vec![days[4], days[3]], "newest two survive");
    }

    #[test]
    fn hostile_inputs_are_typed_errors() {
        for bad in [
            "",
            "segugio-checkpoint v1",
            "segugio-checkpoint v1 10 zzzzzzzz\nx",
            "segugio-checkpoint v2 0 00000000\n",
            "segugio-checkpoint v1 5 00000000\nab",
            "segugio-checkpoint v1 2 00000000\nab",
            "not a checkpoint at all\n",
        ] {
            assert!(
                Tracker::load_from_str(bad).is_err(),
                "input {bad:?} must be a typed error"
            );
        }
        // A valid document with one flipped payload bit fails the CRC.
        let good = Tracker::new().save_to_string();
        let mut bytes = good.clone().into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = Tracker::load_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
    }
}
