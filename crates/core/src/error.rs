//! Typed errors for training and multi-day tracking.
//!
//! A day without both known-malware and known-benign domains has nothing to
//! learn from. Earlier versions of the pipeline panicked on such days; the
//! typed variants here let a deployment skip the day (keeping its tracker
//! state intact) instead of crashing.

use std::fmt;

use segugio_model::Day;

/// Why a model could not be trained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// The training set lacks positive or negative rows.
    InsufficientSeeds {
        /// Known-malware rows available.
        malware: usize,
        /// Known-benign rows available.
        benign: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InsufficientSeeds { malware, benign } => write!(
                f,
                "training set needs both classes: {malware} malware and {benign} benign rows"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Why a tracking day could not be processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerError {
    /// The day's graph lacks known-malware or known-benign seed domains, so
    /// no model can be trained. Tracker state (flags, confirmations, day
    /// count) is left exactly as it was before the call.
    InsufficientSeeds {
        /// The day that could not be processed.
        day: Day,
        /// Known-malware domains in the day's pruned graph.
        malware: usize,
        /// Known-benign domains in the day's pruned graph.
        benign: usize,
    },
    /// Days must be fed in strictly ascending order; an out-of-order (or
    /// repeated) day would corrupt the flag/confirmation timeline. Tracker
    /// state is left exactly as it was before the call.
    NonMonotonicDay {
        /// The most recent successfully processed day.
        last: Day,
        /// The offending input day (`<= last`).
        got: Day,
    },
}

impl fmt::Display for TrackerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackerError::InsufficientSeeds {
                day,
                malware,
                benign,
            } => write!(
                f,
                "day {day}: cannot train with {malware} malware and {benign} benign seed domains"
            ),
            TrackerError::NonMonotonicDay { last, got } => write!(
                f,
                "day {got} delivered after day {last}: tracking days must be strictly ascending"
            ),
        }
    }
}

impl std::error::Error for TrackerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_counts() {
        let t = TrainError::InsufficientSeeds {
            malware: 0,
            benign: 7,
        };
        let msg = t.to_string();
        assert!(msg.contains("0 malware"));
        assert!(msg.contains("7 benign"));

        let t = TrackerError::InsufficientSeeds {
            day: Day(12),
            malware: 3,
            benign: 0,
        };
        let msg = t.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains("0 benign"));
    }
}
