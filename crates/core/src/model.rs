//! The trained model and the detector.

use segugio_ml::{
    Classifier, FlatForest, GradientBoosting, LogisticRegression, RandomForest, RocCurve,
};
use segugio_model::{DomainId, Label, MachineId};
use segugio_pdns::ActivityStore;

use crate::features::{FeatureConfig, FeatureExtractor, FEATURE_COUNT};
use crate::snapshot::DaySnapshot;

/// The classifier behind a [`SegugioModel`].
#[derive(Debug, Clone)]
pub enum ModelBackend {
    /// Random forest.
    Forest(RandomForest),
    /// Logistic regression.
    Logistic(LogisticRegression),
    /// Gradient-boosted trees.
    Boosting(GradientBoosting),
}

impl ModelBackend {
    fn score(&self, features: &[f32]) -> f32 {
        match self {
            ModelBackend::Forest(f) => f.score(features),
            ModelBackend::Logistic(l) => l.score(features),
            ModelBackend::Boosting(b) => b.score(features),
        }
    }
}

/// A domain scored above (or below) the detection threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// The scored domain.
    pub domain: DomainId,
    /// Its malware score in `[0, 1]`.
    pub score: f32,
}

/// Reusable scoring scratch for the bulk entry points.
///
/// Holds the candidate list, the per-candidate score column, and the
/// assembled detections, so a long-running deployment (the
/// [`Tracker`](crate::Tracker)'s daily loop) scores each day with zero
/// heap allocations once the buffer has grown to the network's candidate
/// count.
#[derive(Debug, Clone, Default)]
pub struct ScoreBuffer {
    scores: Vec<f32>,
    detections: Vec<Detection>,
    candidates: Vec<segugio_graph::DomainIdx>,
}

impl ScoreBuffer {
    /// An empty buffer; capacity grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detections from the most recent scoring call, sorted by descending
    /// score with the domain id as tie-break.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// The raw score column from the most recent scoring call, in
    /// candidate (or dataset-row) order — what
    /// [`score_dataset_with`](SegugioModel::score_dataset_with) fills for
    /// threshold calibration.
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Moves the detections out (the buffer keeps its score column).
    pub fn take_detections(&mut self) -> Vec<Detection> {
        std::mem::take(&mut self.detections)
    }
}

/// A trained Segugio classifier: feature projection + scorer.
///
/// Models are intentionally self-contained — they carry the feature windows
/// and column projection they were trained with — so a model trained on one
/// network can be deployed on another (the paper's cross-network result).
#[derive(Debug, Clone)]
pub struct SegugioModel {
    backend: ModelBackend,
    columns: Vec<usize>,
    features: FeatureConfig,
    /// Worker threads for bulk scoring; not persisted — a deployment
    /// property of this process, not of the trained model.
    parallelism: Option<usize>,
    /// Breadth-ordered struct-of-arrays repack of a forest backend, with
    /// the column projection baked into the node feature indices. Built at
    /// construction/load; `None` for non-forest backends. Scores are
    /// bit-for-bit identical to walking the arena.
    flat: Option<FlatForest>,
}

impl SegugioModel {
    pub(crate) fn new(backend: ModelBackend, columns: Vec<usize>, features: FeatureConfig) -> Self {
        let flat = match &backend {
            ModelBackend::Forest(f) => {
                debug_assert_eq!(
                    f.n_features(),
                    columns.len(),
                    "trainer projects consistently"
                );
                Some(FlatForest::from_forest_mapped(f, &columns, FEATURE_COUNT))
            }
            _ => None,
        };
        SegugioModel {
            backend,
            columns,
            features,
            parallelism: None,
            flat,
        }
    }

    /// Sets the worker-thread count used by the bulk scoring entry points
    /// ([`score_unknown`](Self::score_unknown) /
    /// [`score_where`](Self::score_where)): `None` uses every available
    /// core, `Some(1)` forces the serial path. Scores are bit-for-bit
    /// identical at every setting. Models from
    /// [`load_from_str`](Self::load_from_str) default to `None`.
    #[must_use]
    pub fn with_parallelism(mut self, knob: Option<usize>) -> Self {
        self.parallelism = knob;
        self
    }

    /// The feature windows the model was trained with.
    pub fn feature_config(&self) -> FeatureConfig {
        self.features
    }

    /// The feature columns the model consumes (out of the full 11).
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Serializes the model to the versioned text persistence format, so a
    /// model trained on one network can be shipped to another (the paper's
    /// cross-network deployment).
    pub fn save_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "segugio-model v1");
        let _ = writeln!(
            out,
            "features {} {}",
            self.features.activity_days, self.features.abuse_window_days
        );
        let cols: Vec<String> = self.columns.iter().map(usize::to_string).collect();
        let _ = writeln!(out, "columns {}", cols.join(" "));
        match &self.backend {
            ModelBackend::Forest(f) => f.write_text(&mut out),
            ModelBackend::Logistic(l) => l.write_text(&mut out),
            ModelBackend::Boosting(b) => b.write_text(&mut out),
        }
        out
    }

    /// Loads a model saved with [`SegugioModel::save_to_string`].
    ///
    /// # Errors
    ///
    /// Returns [`segugio_ml::ParseModelError`] on version mismatch or
    /// malformed content.
    pub fn load_from_str(text: &str) -> Result<Self, segugio_ml::ParseModelError> {
        use segugio_ml::ParseModelError;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ParseModelError::new("empty model file"))?;
        if header.trim() != "segugio-model v1" {
            return Err(ParseModelError::new("unsupported model version header"));
        }
        let feat = lines
            .next()
            .ok_or_else(|| ParseModelError::new("missing features line"))?;
        let mut parts = feat.split_whitespace();
        if parts.next() != Some("features") {
            return Err(ParseModelError::new("expected `features` line"));
        }
        let activity_days: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseModelError::new("malformed activity window"))?;
        let abuse_window_days: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| ParseModelError::new("malformed abuse window"))?;
        let cols_line = lines
            .next()
            .ok_or_else(|| ParseModelError::new("missing columns line"))?;
        let mut parts = cols_line.split_whitespace();
        if parts.next() != Some("columns") {
            return Err(ParseModelError::new("expected `columns` line"));
        }
        let columns: Vec<usize> = parts
            .map(|p| {
                p.parse::<usize>()
                    .map_err(|_| ParseModelError::new("malformed column index"))
            })
            .collect::<Result<_, _>>()?;
        if columns.is_empty() || columns.iter().any(|&c| c >= FEATURE_COUNT) {
            return Err(ParseModelError::new("invalid feature columns"));
        }
        // Peek the backend header without consuming it.
        let mut peek = lines.clone();
        let backend_header = peek
            .next()
            .ok_or_else(|| ParseModelError::new("missing backend"))?;
        let backend = if backend_header.starts_with("forest") {
            ModelBackend::Forest(
                segugio_ml::RandomForest::read_text(&mut lines)
                    .map_err(|e| e.context("reading forest backend"))?,
            )
        } else if backend_header.starts_with("logistic") {
            ModelBackend::Logistic(
                segugio_ml::LogisticRegression::read_text(&mut lines)
                    .map_err(|e| e.context("reading logistic backend"))?,
            )
        } else if backend_header.starts_with("boosting") {
            ModelBackend::Boosting(
                segugio_ml::GradientBoosting::read_text(&mut lines)
                    .map_err(|e| e.context("reading boosting backend"))?,
            )
        } else {
            return Err(ParseModelError::new("unknown backend header"));
        };
        if let ModelBackend::Forest(f) = &backend {
            // A forest whose arity disagrees with the column projection
            // would index a projected row out of bounds at scoring time;
            // reject it at load instead.
            if f.n_features() != columns.len() {
                return Err(ParseModelError::new(
                    "forest feature count does not match columns line",
                ));
            }
        }
        if let ModelBackend::Boosting(b) = &backend {
            // The boosting format carries no arity header, so bound-check
            // its split features against the column projection here.
            if b.n_features() > columns.len() {
                return Err(ParseModelError::new(
                    "boosting backend references features beyond columns line",
                ));
            }
        }
        Ok(SegugioModel::new(
            backend,
            columns,
            FeatureConfig {
                activity_days,
                abuse_window_days,
            },
        ))
    }

    /// Scores a full 11-feature vector (projection applied internally).
    pub fn score_features(&self, features: &[f32]) -> f32 {
        debug_assert_eq!(features.len(), FEATURE_COUNT);
        if let Some(flat) = &self.flat {
            // Column remap is baked into the flat nodes: no projection.
            return flat.score(features);
        }
        if self.columns.len() == FEATURE_COUNT {
            self.backend.score(features)
        } else {
            // Stack-array projection for the non-forest backends: the
            // projection is at most the full row, so no heap traffic.
            let mut projected = [0.0f32; FEATURE_COUNT];
            for (slot, &c) in projected.iter_mut().zip(&self.columns) {
                *slot = features[c];
            }
            self.backend.score(&projected[..self.columns.len()])
        }
    }

    /// Measures and scores every *unknown* domain in `snapshot`, returning
    /// detections sorted by descending score.
    pub fn score_unknown(
        &self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
    ) -> Vec<Detection> {
        self.score_where(snapshot, activity, |label| label == Label::Unknown)
    }

    /// [`score_unknown`](Self::score_unknown) into a reusable buffer.
    pub fn score_unknown_with(
        &self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        buf: &mut ScoreBuffer,
    ) {
        self.score_where_with(snapshot, activity, |label| label == Label::Unknown, buf);
    }

    /// Measures and scores every domain whose label satisfies `pred`.
    pub fn score_where<F>(
        &self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        pred: F,
    ) -> Vec<Detection>
    where
        F: Fn(Label) -> bool,
    {
        let mut buf = ScoreBuffer::new();
        self.score_where_with(snapshot, activity, pred, &mut buf);
        buf.take_detections()
    }

    /// [`score_where`](Self::score_where) into a reusable buffer: the
    /// sorted detections land in `buf` and no intermediate vectors are
    /// allocated once the buffer has warmed up.
    ///
    /// With a forest backend, candidates are measured and scored in
    /// [`SCORE_BLOCK`](segugio_ml::flat::SCORE_BLOCK)-row blocks so the
    /// feature rows stay in cache while every tree walks them. Scores are
    /// bit-for-bit identical to the per-row path at any parallelism.
    pub fn score_where_with<F>(
        &self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        pred: F,
        buf: &mut ScoreBuffer,
    ) where
        F: Fn(Label) -> bool,
    {
        let extractor =
            FeatureExtractor::new(&snapshot.graph, activity, &snapshot.abuse, self.features);
        // The candidate list, score column, and detections all live in the
        // reusable buffer: a warmed-up buffer makes the whole pass
        // allocation-free. Destructure so the three columns can be
        // borrowed independently across the worker closure.
        let ScoreBuffer {
            scores,
            detections,
            candidates,
        } = buf;
        candidates.clear();
        candidates.extend(
            snapshot
                .graph
                .domain_indices()
                .filter(|&d| pred(snapshot.graph.domain_label(d))),
        );
        // Each candidate is measured and scored independently; chunk over
        // workers filling disjoint slices of the score column, then sort —
        // the result is identical at any parallelism.
        let threads = crate::parallel::resolve_parallelism(self.parallelism);
        scores.clear();
        scores.resize(candidates.len(), 0.0);
        const BLOCK: usize = segugio_ml::flat::SCORE_BLOCK;
        match &self.flat {
            Some(flat) => {
                crate::parallel::parallel_map_fill(scores, threads, |base, out| {
                    let mut block = [[0.0f32; FEATURE_COUNT]; BLOCK];
                    let mut done = 0usize;
                    while done < out.len() {
                        let take = (out.len() - done).min(BLOCK);
                        for (k, row) in block[..take].iter_mut().enumerate() {
                            *row = extractor.measure(candidates[base + done + k]);
                        }
                        flat.score_block(&block[..take], &mut out[done..done + take]);
                        done += take;
                    }
                });
            }
            None => {
                crate::parallel::parallel_map_fill(scores, threads, |base, out| {
                    for (k, s) in out.iter_mut().enumerate() {
                        *s = self.score_features(&extractor.measure(candidates[base + k]));
                    }
                });
            }
        }
        detections.clear();
        detections.extend(
            candidates
                .iter()
                .zip(scores.iter())
                .map(|(&d, &score)| Detection {
                    domain: snapshot.graph.domain_id(d),
                    score,
                }),
        );
        // Unstable sort: equal sort keys mean byte-identical `Detection`
        // values (score *and* domain equal), so the order is still fully
        // deterministic — and no sort scratch is allocated.
        detections
            .sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.domain.cmp(&b.domain)));
    }

    /// Scores pre-measured feature rows and returns detections sorted
    /// exactly like [`score_where`](Self::score_where) (descending score,
    /// domain id as the tie-break).
    ///
    /// The incremental engine measures rows itself — reusing cached columns
    /// for unchanged domains — and hands them here; with identical rows the
    /// result is bit-for-bit what `score_where` would produce.
    pub fn score_rows(&self, ids: &[DomainId], rows: &[[f32; FEATURE_COUNT]]) -> Vec<Detection> {
        let mut buf = ScoreBuffer::new();
        self.score_rows_with(ids, rows, &mut buf);
        buf.take_detections()
    }

    /// [`score_rows`](Self::score_rows) into a reusable buffer. The rows
    /// are already contiguous, so the forest path hands each worker's chunk
    /// straight to the flat forest's blocked scorer — no copies at all.
    pub fn score_rows_with(
        &self,
        ids: &[DomainId],
        rows: &[[f32; FEATURE_COUNT]],
        buf: &mut ScoreBuffer,
    ) {
        debug_assert_eq!(ids.len(), rows.len());
        let n = ids.len().min(rows.len());
        let threads = crate::parallel::resolve_parallelism(self.parallelism);
        buf.scores.clear();
        buf.scores.resize(n, 0.0);
        match &self.flat {
            Some(flat) => {
                crate::parallel::parallel_map_fill(&mut buf.scores, threads, |base, out| {
                    flat.score_rows(&rows[base..base + out.len()], out);
                });
            }
            None => {
                crate::parallel::parallel_map_fill(&mut buf.scores, threads, |base, out| {
                    for (k, s) in out.iter_mut().enumerate() {
                        *s = self.score_features(&rows[base + k]);
                    }
                });
            }
        }
        buf.detections.clear();
        buf.detections.extend(
            ids.iter()
                .take(n)
                .zip(&buf.scores)
                .map(|(&domain, &score)| Detection { domain, score }),
        );
        // Unstable for the same reason as `score_where_with`: ties are
        // byte-identical detections, and the stable sort's merge scratch
        // is the last allocation on this path.
        buf.detections
            .sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.domain.cmp(&b.domain)));
    }

    /// Scores every row of a prepared training dataset into the buffer's
    /// score column (no detections are assembled — dataset rows carry
    /// hidden labels, not domain ids). This is the threshold-calibration
    /// entry point: the [`Tracker`](crate::Tracker) scores the training
    /// set here every morning and reads the column back via
    /// [`ScoreBuffer::scores`]. Row order is preserved and scores are
    /// bit-for-bit identical at any parallelism.
    pub fn score_dataset_with(&self, data: &segugio_ml::Dataset, buf: &mut ScoreBuffer) {
        let threads = crate::parallel::resolve_parallelism(self.parallelism);
        buf.scores.clear();
        buf.scores.resize(data.len(), 0.0);
        crate::parallel::parallel_map_fill(&mut buf.scores, threads, |base, out| {
            for (k, s) in out.iter_mut().enumerate() {
                *s = self.score_features(data.row(base + k));
            }
        });
    }
}

/// A model plus an operating threshold: the deployed detector.
///
/// The threshold is typically chosen on training-day scores for a target
/// false-positive rate via [`RocCurve::threshold_for_fpr`].
#[derive(Debug, Clone)]
pub struct Detector {
    model: SegugioModel,
    threshold: f32,
}

impl Detector {
    /// Wraps a model with a fixed detection threshold.
    pub fn new(model: SegugioModel, threshold: f32) -> Self {
        Detector { model, threshold }
    }

    /// Chooses the threshold from a ROC curve at the target FPR.
    pub fn with_target_fpr(model: SegugioModel, roc: &RocCurve, target_fpr: f64) -> Self {
        let threshold = roc.threshold_for_fpr(target_fpr);
        Detector { model, threshold }
    }

    /// The wrapped model.
    pub fn model(&self) -> &SegugioModel {
        &self.model
    }

    /// The operating threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Scores the unknown domains of `snapshot` and returns those at or
    /// above the threshold (sorted by descending score).
    pub fn detect(&self, snapshot: &DaySnapshot, activity: &ActivityStore) -> Vec<Detection> {
        let mut buf = ScoreBuffer::new();
        self.detect_with(snapshot, activity, &mut buf);
        buf.take_detections()
    }

    /// [`detect`](Self::detect) into a reusable buffer: after the call,
    /// [`ScoreBuffer::detections`] holds exactly the at-or-above-threshold
    /// detections (sorted by descending score) and nothing was allocated
    /// once the buffer has warmed up. Returns the detection count.
    ///
    /// The detections are sorted by descending score, so the threshold cut
    /// is a truncation, not a filter pass.
    pub fn detect_with(
        &self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        buf: &mut ScoreBuffer,
    ) -> usize {
        self.model.score_unknown_with(snapshot, activity, buf);
        let keep = buf
            .detections
            .partition_point(|d| d.score >= self.threshold);
        buf.detections.truncate(keep);
        keep
    }

    /// The machines implied infected by a set of detections: every machine
    /// that queried at least one detected domain (Section VI: "Segugio can
    /// detect both malware-control domains and the infected machines that
    /// query them at the same time").
    pub fn implied_infections(
        &self,
        snapshot: &DaySnapshot,
        detections: &[Detection],
    ) -> Vec<MachineId> {
        let mut machines = Vec::new();
        for det in detections {
            if let Some(d) = snapshot.graph.domain_idx(det.domain) {
                machines.extend(
                    snapshot
                        .graph
                        .machines_of(d)
                        .map(|m| snapshot.graph.machine_id(m)),
                );
            }
        }
        machines.sort_unstable();
        machines.dedup();
        machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SegugioConfig;
    use crate::snapshot::SnapshotInput;
    use crate::trainer::Segugio;
    use segugio_model::{Blacklist, Day, DomainName, DomainTable, Ipv4, Whitelist};
    use segugio_pdns::PassiveDns;

    /// World with a *held-out* malware domain (never blacklisted) queried by
    /// the infected cluster — the detector should find it.
    fn fixture() -> (DaySnapshot, ActivityStore, SegugioConfig, DomainId) {
        let mut table = DomainTable::new();
        let benign: Vec<DomainId> = (0..8)
            .map(|i| table.intern(&DomainName::parse(&format!("site{i}.example")).unwrap()))
            .collect();
        let known_mal: Vec<DomainId> = (0..2)
            .map(|i| table.intern(&DomainName::parse(&format!("c2x{i}.example")).unwrap()))
            .collect();
        let unknown_mal = table.intern(&DomainName::parse("freshc2.example").unwrap());

        let mut whitelist = Whitelist::new();
        for &b in &benign {
            whitelist.insert(table.e2ld_of(b));
        }
        let mut blacklist = Blacklist::new();
        for &m in &known_mal {
            blacklist.insert(m, Day(0));
        }

        let mut queries = Vec::new();
        for machine in 0..40u32 {
            for &b in &benign {
                queries.push((MachineId(machine), b));
            }
            if machine < 8 {
                for &m in &known_mal {
                    queries.push((MachineId(machine), m));
                }
                queries.push((MachineId(machine), unknown_mal));
            }
        }
        let mut resolutions = Vec::new();
        let mut pdns = PassiveDns::new();
        let mut activity = ActivityStore::new();
        for (k, &d) in benign.iter().enumerate() {
            let ip = Ipv4::from_octets(10, 0, 0, k as u8);
            resolutions.push((d, vec![ip]));
            for day in 0..15 {
                pdns.record(d, ip, Day(day));
                activity.record(d, table.e2ld_of(d), Day(day));
            }
        }
        // Malware lives in a shared abused prefix; the fresh domain is young.
        for (k, &d) in known_mal.iter().enumerate() {
            let ip = Ipv4::from_octets(45, 0, 0, k as u8);
            resolutions.push((d, vec![ip]));
            for day in 5..15 {
                pdns.record(d, ip, Day(day));
                activity.record(d, table.e2ld_of(d), Day(day));
            }
        }
        let fresh_ip = Ipv4::from_octets(45, 0, 0, 200);
        resolutions.push((unknown_mal, vec![fresh_ip]));
        for day in 13..15 {
            pdns.record(unknown_mal, fresh_ip, Day(day));
            activity.record(unknown_mal, table.e2ld_of(unknown_mal), Day(day));
        }

        let mut config = SegugioConfig::default();
        config.prune.min_machine_degree = 2;
        // Every machine queries every benign domain in this fixture, so the
        // too-popular rule R4 would empty it; disable R4 here.
        config.prune.popular_fraction = 2.0;
        if let crate::config::ClassifierKind::Forest(f) = &mut config.classifier {
            f.n_trees = 15;
        }
        let input = SnapshotInput {
            day: Day(14),
            queries: &queries,
            resolutions: &resolutions,
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let snap = Segugio::build_snapshot(&input, &config);
        (snap, activity, config, unknown_mal)
    }

    #[test]
    fn detector_finds_fresh_control_domain() {
        let (snap, activity, config, unknown_mal) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let detections = model.score_unknown(&snap, &activity);
        assert!(!detections.is_empty());
        // The fresh C&C domain must be the top-scored unknown domain.
        assert_eq!(detections[0].domain, unknown_mal);
        assert!(detections[0].score > 0.5);
    }

    #[test]
    fn detector_threshold_filters() {
        let (snap, activity, config, unknown_mal) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let det = Detector::new(model, 0.5);
        let hits = det.detect(&snap, &activity);
        assert!(hits.iter().any(|d| d.domain == unknown_mal));
        assert!(hits.iter().all(|d| d.score >= 0.5));
    }

    #[test]
    fn implied_infections_cover_the_cluster() {
        let (snap, activity, config, unknown_mal) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let det = Detector::new(model, 0.5);
        let hits: Vec<Detection> = det
            .detect(&snap, &activity)
            .into_iter()
            .filter(|d| d.domain == unknown_mal)
            .collect();
        let machines = det.implied_infections(&snap, &hits);
        assert_eq!(machines.len(), 8, "all eight infected machines implied");
        assert!(machines.iter().all(|m| m.0 < 8));
    }

    #[test]
    fn model_persistence_round_trip() {
        let (snap, activity, config, _) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let text = model.save_to_string();
        let loaded = SegugioModel::load_from_str(&text).unwrap();
        assert_eq!(loaded.columns(), model.columns());
        assert_eq!(loaded.feature_config(), model.feature_config());
        // Identical scores on identical inputs.
        let a = model.score_unknown(&snap, &activity);
        let b = loaded.score_unknown(&snap, &activity);
        assert_eq!(a, b);
        // Rejects garbage.
        assert!(SegugioModel::load_from_str("").is_err());
        assert!(SegugioModel::load_from_str("segugio-model v99").is_err());
        assert!(SegugioModel::load_from_str(
            "segugio-model v1
features 14 150
columns 0 1
bogus"
        )
        .is_err());
    }

    #[test]
    fn detections_are_sorted_desc() {
        let (snap, activity, config, _) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let detections = model.score_unknown(&snap, &activity);
        for w in detections.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
