//! Training-set preparation and model training (paper Section II-A3).

use segugio_graph::HiddenLabelView;
use segugio_ml::{Dataset, ForestConfig, GradientBoosting, LogisticRegression, RandomForest};
use segugio_model::{DomainId, Label};
use segugio_pdns::ActivityStore;

use crate::config::{ClassifierKind, SegugioConfig};
use crate::error::TrainError;
use crate::features::{FeatureExtractor, FEATURE_COUNT};
use crate::model::{ModelBackend, SegugioModel};
use crate::parallel::parallel_map_indexed;
use crate::snapshot::{DaySnapshot, SnapshotInput};

/// Builds the labeled training set from a day snapshot.
///
/// For every domain whose label is known (malware or benign), the label is
/// *hidden* (cascading to the machines that depended on it, Fig. 5), the 11
/// features are measured under the hidden view, and the feature vector is
/// emitted with the domain's true label. Returns the dataset and the domain
/// ids in row order.
pub fn build_training_set(
    snapshot: &DaySnapshot,
    activity: &ActivityStore,
    config: &SegugioConfig,
) -> (Dataset, Vec<DomainId>) {
    let extractor =
        FeatureExtractor::new(&snapshot.graph, activity, &snapshot.abuse, config.features);
    let known: Vec<_> = snapshot
        .graph
        .domain_indices()
        .filter_map(|d| {
            let label = snapshot.graph.domain_label(d);
            (label != Label::Unknown).then_some((d, label))
        })
        .collect();
    // Feature measurement per known domain is independent of every other
    // domain; fan out over workers and merge rows back in domain-index
    // order so the dataset is identical at any parallelism.
    let rows = parallel_map_indexed(known.len(), config.effective_parallelism(), |i| {
        let view = HiddenLabelView::new(&snapshot.graph, known[i].0);
        extractor.measure_hidden(&view)
    });
    let mut data = Dataset::new(FEATURE_COUNT);
    let mut ids = Vec::with_capacity(known.len());
    for (&(d, label), features) in known.iter().zip(&rows) {
        data.push(features, label == Label::Malware);
        ids.push(snapshot.graph.domain_id(d));
    }
    (data, ids)
}

/// The Segugio system facade: snapshot building and model training.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Segugio;

impl Segugio {
    /// Builds a labeled, pruned [`DaySnapshot`] from raw day inputs.
    pub fn build_snapshot(input: &SnapshotInput<'_>, config: &SegugioConfig) -> DaySnapshot {
        DaySnapshot::build(input, config)
    }

    /// Trains a [`SegugioModel`] on the known domains of `snapshot`.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InsufficientSeeds`] if the snapshot contains no
    /// known malware or no known benign domains (there is nothing to learn
    /// from).
    pub fn train(
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        config: &SegugioConfig,
    ) -> Result<SegugioModel, TrainError> {
        let (full, _ids) = build_training_set(snapshot, activity, config);
        Self::train_prepared(&full, config)
    }

    /// Trains on an already-extracted training set, with the same error as
    /// [`Segugio::train`]. Callers that also need the training set (e.g. for
    /// threshold calibration) extract it once and pass it here instead of
    /// paying the feature measurement twice.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InsufficientSeeds`] if `full` has no positive
    /// or no negative rows.
    pub fn train_prepared(
        full: &Dataset,
        config: &SegugioConfig,
    ) -> Result<SegugioModel, TrainError> {
        if full.positive_count() == 0 || full.negative_count() == 0 {
            return Err(TrainError::InsufficientSeeds {
                malware: full.positive_count(),
                benign: full.negative_count(),
            });
        }
        Ok(Self::train_on(full, config))
    }

    /// Trains a model directly on a prepared training set (used by the
    /// evaluation harness for cross-fold experiments).
    pub fn train_on(full: &Dataset, config: &SegugioConfig) -> SegugioModel {
        let columns = config
            .feature_columns
            .clone()
            .unwrap_or_else(|| (0..FEATURE_COUNT).collect());
        let projected = if columns.len() == FEATURE_COUNT {
            full.clone()
        } else {
            full.project(&columns)
        };
        let backend = match &config.classifier {
            ClassifierKind::Forest(cfg) => {
                // The pipeline-wide knob overrides the forest's own thread
                // heuristic so one setting governs the whole hot path; a
                // forest config with explicit threads still wins when the
                // pipeline knob is unset.
                let fit_cfg;
                let cfg = if let Some(n) = config.parallelism {
                    fit_cfg = ForestConfig {
                        threads: n.max(1),
                        ..cfg.clone()
                    };
                    &fit_cfg
                } else {
                    cfg
                };
                ModelBackend::Forest(RandomForest::fit(&projected, cfg))
            }
            ClassifierKind::Logistic(cfg) => {
                ModelBackend::Logistic(LogisticRegression::fit(&projected, cfg))
            }
            ClassifierKind::Boosting(cfg) => {
                ModelBackend::Boosting(GradientBoosting::fit(&projected, cfg))
            }
        };
        SegugioModel::new(backend, columns, config.features).with_parallelism(config.parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_model::{Blacklist, Day, DomainName, DomainTable, Ipv4, MachineId, Whitelist};
    use segugio_pdns::PassiveDns;

    /// A minimal but learnable world: 30 machines, 6 benign domains queried
    /// by everyone, 2 malware domains queried by a 6-machine infected
    /// cluster.
    fn fixture() -> (DaySnapshot, ActivityStore, SegugioConfig) {
        let mut table = DomainTable::new();
        let benign: Vec<DomainId> = (0..6)
            .map(|i| table.intern(&DomainName::parse(&format!("site{i}.example")).unwrap()))
            .collect();
        let mal: Vec<DomainId> = (0..2)
            .map(|i| table.intern(&DomainName::parse(&format!("c2x{i}.example")).unwrap()))
            .collect();

        let mut whitelist = Whitelist::new();
        for &b in &benign {
            whitelist.insert(table.e2ld_of(b));
        }
        let mut blacklist = Blacklist::new();
        for &m in &mal {
            blacklist.insert(m, Day(0));
        }

        let mut queries = Vec::new();
        for machine in 0..30u32 {
            for &b in &benign {
                queries.push((MachineId(machine), b));
            }
            if machine < 6 {
                for &m in &mal {
                    queries.push((MachineId(machine), m));
                }
            }
        }
        let mut resolutions = Vec::new();
        let mut pdns = PassiveDns::new();
        let mut activity = ActivityStore::new();
        for (k, &d) in benign.iter().chain(mal.iter()).enumerate() {
            let ip = Ipv4::from_octets(10, 0, 0, k as u8);
            resolutions.push((d, vec![ip]));
            for day in 0..10 {
                pdns.record(d, ip, Day(day));
                activity.record(d, table.e2ld_of(d), Day(day));
            }
        }

        let mut config = SegugioConfig::default();
        config.prune.min_machine_degree = 2;
        // Every machine queries every benign domain in this fixture, so the
        // too-popular rule R4 would empty it; disable R4 here.
        config.prune.popular_fraction = 2.0;
        if let ClassifierKind::Forest(f) = &mut config.classifier {
            f.n_trees = 15;
        }
        let input = SnapshotInput {
            day: Day(9),
            queries: &queries,
            resolutions: &resolutions,
            table: &table,
            pdns: &pdns,
            blacklist: &blacklist,
            whitelist: &whitelist,
            hidden: None,
        };
        let snap = Segugio::build_snapshot(&input, &config);
        (snap, activity, config)
    }

    #[test]
    fn one_sided_training_set_is_a_typed_error() {
        let (snap, activity, config) = fixture();
        let (full, _) = build_training_set(&snap, &activity, &config);
        // Rebuild a dataset with only the malware rows.
        let mut one_sided = Dataset::new(FEATURE_COUNT);
        for i in 0..full.len() {
            if full.label(i) {
                one_sided.push(full.row(i), true);
            }
        }
        let err = Segugio::train_prepared(&one_sided, &config).unwrap_err();
        assert_eq!(
            err,
            crate::error::TrainError::InsufficientSeeds {
                malware: 2,
                benign: 0
            }
        );
    }

    #[test]
    fn training_set_has_all_known_domains() {
        let (snap, activity, config) = fixture();
        let (data, ids) = build_training_set(&snap, &activity, &config);
        assert_eq!(data.len(), 8, "6 benign + 2 malware domains");
        assert_eq!(data.positive_count(), 2);
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn hidden_features_do_not_leak_self_label() {
        let (snap, activity, config) = fixture();
        let (data, ids) = build_training_set(&snap, &activity, &config);
        // For malware rows, the infected fraction (feature 0) must be below
        // 1.0 when the machines' only malware evidence is sibling domains —
        // here each infected machine queries *both* malware domains, so
        // hiding one leaves the other and m stays 1.0. The benign rows must
        // see m = 0.
        for (i, id) in ids.iter().enumerate() {
            let row = data.row(i);
            if data.label(i) {
                assert!(row[0] > 0.9, "cluster still known-infected via sibling");
            } else {
                // Benign sites are browsed by infected machines too, but the
                // infected fraction stays at the base rate (6 of 30).
                assert!((row[0] - 0.2).abs() < 1e-6, "benign domain {id:?}");
            }
        }
    }

    #[test]
    fn trained_model_separates_fixture() {
        let (snap, activity, config) = fixture();
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let (data, _) = build_training_set(&snap, &activity, &config);
        for i in 0..data.len() {
            let score = model.score_features(data.row(i));
            if data.label(i) {
                assert!(score > 0.5, "malware row scored {score}");
            } else {
                assert!(score < 0.5, "benign row scored {score}");
            }
        }
    }

    #[test]
    fn logistic_backend_also_works() {
        let (snap, activity, mut config) = fixture();
        config.classifier = ClassifierKind::Logistic(Default::default());
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let (data, _) = build_training_set(&snap, &activity, &config);
        let pos: Vec<f32> = (0..data.len())
            .filter(|&i| data.label(i))
            .map(|i| model.score_features(data.row(i)))
            .collect();
        let neg: Vec<f32> = (0..data.len())
            .filter(|&i| !data.label(i))
            .map(|i| model.score_features(data.row(i)))
            .collect();
        let min_pos = pos.iter().copied().fold(f32::INFINITY, f32::min);
        let max_neg = neg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(min_pos > max_neg, "logistic model must rank malware higher");
    }

    #[test]
    fn boosting_backend_also_works() {
        let (snap, activity, mut config) = fixture();
        // The fixture has only 8 training rows; allow tiny leaves.
        config.classifier = ClassifierKind::Boosting(segugio_ml::BoostingConfig {
            n_rounds: 25,
            min_samples_leaf: 1,
            subsample: 1.0,
            ..Default::default()
        });
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        let (data, _) = build_training_set(&snap, &activity, &config);
        let pos: Vec<f32> = (0..data.len())
            .filter(|&i| data.label(i))
            .map(|i| model.score_features(data.row(i)))
            .collect();
        let neg: Vec<f32> = (0..data.len())
            .filter(|&i| !data.label(i))
            .map(|i| model.score_features(data.row(i)))
            .collect();
        let min_pos = pos.iter().copied().fold(f32::INFINITY, f32::min);
        let max_neg = neg.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(min_pos > max_neg, "boosting must rank malware higher");
        // And it persists.
        let text = model.save_to_string();
        let loaded = crate::model::SegugioModel::load_from_str(&text).unwrap();
        assert_eq!(
            loaded.score_features(data.row(0)),
            model.score_features(data.row(0))
        );
    }

    #[test]
    fn ablated_model_uses_projected_columns() {
        let (snap, activity, mut config) = fixture();
        config.feature_columns = Some(crate::features::FeatureGroup::IpAbuse.complement_columns());
        let model = Segugio::train(&snap, &activity, &config).expect("fixture has both classes");
        // Scoring still takes the full 11-feature vector.
        let (data, _) = build_training_set(&snap, &activity, &config);
        let s = model.score_features(data.row(0));
        assert!(s.is_finite());
    }
}
