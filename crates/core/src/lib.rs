//! Segugio — behavior-based tracking of malware-control domains.
//!
//! This crate is the paper's primary contribution: given one day of DNS
//! traffic summarized as a labeled machine–domain behavior graph (built by
//! `segugio-graph` from `segugio-traffic` or any other source), plus the
//! history stores from `segugio-pdns`, it
//!
//! 1. measures **11 statistical features** per domain in three groups —
//!    machine behavior (F1), domain activity (F2) and IP abuse (F3)
//!    ([`features`]);
//! 2. prepares a **training set** from the known benign/malware domains by
//!    temporarily *hiding* each domain's label while its features are
//!    measured ([`trainer`], paper Fig. 5);
//! 3. trains a statistical classifier (Random Forest by default, logistic
//!    regression as the alternative) and wraps it in a [`SegugioModel`];
//! 4. scores every still-`unknown` domain of a (possibly different) day's
//!    graph and reports those above a tunable threshold, together with the
//!    infected machines implied by the detections ([`Detector`]).
//!
//! # Quick start
//!
//! ```
//! use segugio_core::{Segugio, SegugioConfig, SnapshotInput};
//! use segugio_traffic::{IspConfig, IspNetwork};
//!
//! // Simulate a small ISP with history.
//! let mut isp = IspNetwork::new(IspConfig::tiny(42));
//! isp.warm_up(15);
//! let train_day = isp.next_day();
//!
//! // Build the labeled day snapshot and train.
//! let config = SegugioConfig::default();
//! let input = SnapshotInput {
//!     day: train_day.day,
//!     queries: &train_day.queries,
//!     resolutions: &train_day.resolutions,
//!     table: isp.table(),
//!     pdns: isp.pdns(),
//!     blacklist: isp.commercial_blacklist(),
//!     whitelist: isp.whitelist(),
//!     hidden: None,
//! };
//! let snapshot = Segugio::build_snapshot(&input, &config);
//! let model = Segugio::train(&snapshot, isp.activity(), &config)
//!     .expect("the warmed-up fixture seeds both classes");
//!
//! // Detect on the next day.
//! let test_day = isp.next_day();
//! let input2 = SnapshotInput {
//!     day: test_day.day,
//!     queries: &test_day.queries,
//!     resolutions: &test_day.resolutions,
//!     table: isp.table(),
//!     pdns: isp.pdns(),
//!     blacklist: isp.commercial_blacklist(),
//!     whitelist: isp.whitelist(),
//!     hidden: None,
//! };
//! let snapshot2 = Segugio::build_snapshot(&input2, &config);
//! let detections = model.score_unknown(&snapshot2, isp.activity());
//! assert!(!detections.is_empty());
//! ```

#![warn(missing_docs)]
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod features;
pub mod incremental;
pub mod model;
pub mod parallel;
pub mod snapshot;
pub mod tracker;
pub mod trainer;

pub use checkpoint::{
    crc32, write_atomic, write_atomic_with_kill, CheckpointError, WriteOutcome,
    DEFAULT_KEEP_GENERATIONS,
};
pub use config::{ClassifierKind, HealthPolicy, SegugioConfig};
pub use error::{TrackerError, TrainError};
pub use features::{FeatureConfig, FeatureExtractor, FeatureGroup, FEATURE_COUNT, FEATURE_NAMES};
pub use incremental::{DayFeatures, IncrementalEngine};
pub use model::{Detection, Detector, ScoreBuffer, SegugioModel};
pub use snapshot::{DaySnapshot, SnapshotInput};
pub use tracker::{DayOutcome, DayReport, Degradation, Tracker, TrackerConfig};
pub use trainer::{build_training_set, Segugio};
