//! Cross-day incremental state: delta-built graphs, a rolling abuse index,
//! and a dirty-set feature cache.
//!
//! A production deployment processes consecutive days whose inputs overlap
//! almost entirely: the same machines query mostly the same domains, the
//! pDNS abuse window shifts by a single day, and the vast majority of
//! domains end up with exactly the same feature vector as yesterday.
//! [`IncrementalEngine`] exploits all three kinds of overlap while staying
//! **bit-for-bit identical** to the from-scratch path:
//!
//! 1. the unpruned graph is advanced by
//!    [`DeltaBuilder`](segugio_graph::DeltaBuilder) instead of re-sorting
//!    the whole edge list;
//! 2. the IP-abuse index is advanced by
//!    [`RollingAbuseIndex`](segugio_pdns::RollingAbuseIndex) — ingesting
//!    the entering day, evicting the leaving one — instead of rescanning
//!    `W` days of pDNS history;
//! 3. per-domain feature vectors are cached and reused when nothing that
//!    feeds them changed (the *dirty set* is derived from graph and
//!    abuse-index deltas); only the activity columns (F2), whose lookback
//!    window moves every day, are always recomputed.
//!
//! The equality argument, per feature group: F1 depends only on the
//! querier set and the (possibly hidden-view) labels of those queriers —
//! both checked. F3 depends only on the domain's resolved IPs and the
//! abuse-index entries for those IPs — the IP set is checked for equality
//! and the abuse entries for membership in the day's touched set. F2 is
//! recomputed outright. Anything not provably clean is re-measured.

use std::collections::BTreeMap;

use segugio_graph::{BehaviorGraph, DeltaBuilder, DomainIdx, HiddenLabelView};
use segugio_ml::Dataset;
use segugio_model::{DomainId, Label};
use segugio_pdns::{AbuseDelta, ActivityStore, RollingAbuseIndex};

use crate::config::SegugioConfig;
use crate::features::{FeatureExtractor, FEATURE_COUNT};
use crate::parallel::parallel_map_indexed;
use crate::snapshot::{build_unpruned_graph, finish_snapshot, DaySnapshot, SnapshotInput};

/// One cached per-domain measurement from the previous day.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// The label the domain had when the row was measured — a label flip
    /// changes both the measurement mode (hidden vs. plain) and the row's
    /// destination (training set vs. scoring candidates).
    label: Label,
    features: [f32; FEATURE_COUNT],
}

/// Everything remembered about the previous processed day.
#[derive(Debug, Clone)]
struct PrevDay {
    /// The previous day's *pruned, labeled* graph — the graph features were
    /// measured on.
    pruned: BehaviorGraph,
    /// Feature rows measured on that graph, keyed by external domain id.
    cache: BTreeMap<DomainId, CacheEntry>,
}

/// The day's measured features, split the way the tracking loop consumes
/// them.
#[derive(Debug, Clone)]
pub struct DayFeatures {
    /// Labeled training rows, one per known domain in domain-index order —
    /// identical to what [`build_training_set`](crate::build_training_set)
    /// returns.
    pub train: Dataset,
    /// External ids of the training rows, in row order.
    pub train_ids: Vec<DomainId>,
    /// External ids of the unknown domains, in domain-index order.
    pub unknown_ids: Vec<DomainId>,
    /// Feature rows of the unknown domains, parallel to `unknown_ids`.
    pub unknown_rows: Vec<[f32; FEATURE_COUNT]>,
    /// How many rows reused yesterday's cached F1/F3 columns instead of a
    /// full re-measurement — the cache hit count, for telemetry.
    pub reused: usize,
}

/// Carries graph, abuse-index and feature state from one day to the next.
///
/// Use [`build_snapshot`](Self::build_snapshot) then
/// [`measure_day`](Self::measure_day) once per day, in ascending day order.
/// Both are drop-in replacements for the from-scratch path
/// ([`DaySnapshot::build`] + [`build_training_set`](crate::build_training_set)
/// / [`score_unknown`](crate::SegugioModel::score_unknown)) with identical
/// outputs; [`Tracker`](crate::Tracker) switches between the two paths on
/// the [`SegugioConfig::incremental`] knob.
#[derive(Debug, Clone, Default)]
pub struct IncrementalEngine {
    delta: Option<DeltaBuilder>,
    rolling: RollingAbuseIndex,
    /// IPs/prefixes whose abuse-index entries changed in the latest
    /// [`build_snapshot`](Self::build_snapshot) advance.
    touched: AbuseDelta,
    prev: Option<PrevDay>,
    /// Dirty-set scratch (per-machine changed flags), reused across days.
    machine_changed: Vec<bool>,
    /// Dirty-set scratch (per-domain reusable cached rows), reused across
    /// days.
    reuse: Vec<Option<[f32; FEATURE_COUNT]>>,
}

impl IncrementalEngine {
    /// Creates an engine with no prior-day state; the first day it sees is
    /// built from scratch and subsequent days incrementally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds `input.day`'s snapshot, advancing the delta graph and the
    /// rolling abuse index. Output equals [`DaySnapshot::build`] on the
    /// same input, bit for bit.
    pub fn build_snapshot(
        &mut self,
        input: &SnapshotInput<'_>,
        config: &SegugioConfig,
    ) -> DaySnapshot {
        let unpruned = match self.delta.as_mut() {
            None => {
                let graph = build_unpruned_graph(input, config);
                self.delta = Some(DeltaBuilder::new(&graph));
                graph
            }
            Some(delta) => delta.advance(input.day, input.queries, input.resolutions, |d| {
                input.table.e2ld_of(d)
            }),
        };
        let window = input
            .day
            .lookback_exclusive(config.features.abuse_window_days);
        self.touched = self
            .rolling
            .advance(input.pdns, window, |d| input.seed_label(d));
        // segugio-lint: allow(H2, the snapshot owns its abuse index while the rolling copy keeps advancing — one O(index) copy per day)
        finish_snapshot(unpruned, self.rolling.index().clone(), input, config)
    }

    /// Measures every domain of the day's pruned graph, reusing yesterday's
    /// cached rows for domains whose inputs provably did not change.
    ///
    /// `snapshot` must be the value the immediately preceding
    /// [`build_snapshot`](Self::build_snapshot) call returned — the dirty
    /// set compares it against the previous day and against the abuse
    /// entries touched by that same advance.
    pub fn measure_day(
        &mut self,
        snapshot: &DaySnapshot,
        activity: &ActivityStore,
        config: &SegugioConfig,
    ) -> DayFeatures {
        let graph = &snapshot.graph;
        let extractor = FeatureExtractor::new(graph, activity, &snapshot.abuse, config.features);

        // The dirty-set columns live in reusable engine scratch; the
        // destructuring lets the closures below borrow the read-only fields
        // while the scratch columns are filled.
        let IncrementalEngine {
            prev,
            touched,
            machine_changed,
            reuse,
            ..
        } = self;

        // A machine's contribution to any feature is its label and — under
        // the hidden-label view — its malware degree; a machine absent
        // yesterday is trivially changed.
        machine_changed.clear();
        match prev.as_ref() {
            None => machine_changed.resize(graph.machine_count(), true),
            Some(prev) => machine_changed.extend(graph.machine_indices().map(|m| {
                match prev.pruned.machine_idx(graph.machine_id(m)) {
                    None => true,
                    Some(pm) => {
                        prev.pruned.machine_label(pm) != graph.machine_label(m)
                            || prev.pruned.machine_malware_degree(pm)
                                != graph.machine_malware_degree(m)
                    }
                }
            })),
        }
        let machine_changed = &*machine_changed;
        let prev_day = prev.as_ref();
        let touched = &*touched;

        // Per domain: the cached row, if every input to its F1/F3 columns
        // is provably unchanged since it was measured.
        let clean_row = |d: DomainIdx| -> Option<[f32; FEATURE_COUNT]> {
            let prev = prev_day?;
            let id = graph.domain_id(d);
            let entry = prev.cache.get(&id)?;
            if entry.label != graph.domain_label(d) {
                return None;
            }
            let pd = prev.pruned.domain_idx(id)?;
            if prev.pruned.domain_degree(pd) != graph.domain_degree(d) {
                return None;
            }
            // Same querier machines, none of them changed.
            let mut prev_queriers = prev.pruned.machines_of(pd);
            for m in graph.machines_of(d) {
                let pm = prev_queriers.next()?;
                if prev.pruned.machine_id(pm) != graph.machine_id(m) || machine_changed[m.index()] {
                    return None;
                }
            }
            // Same resolved IPs, none with a changed abuse entry.
            if prev.pruned.domain_ips(pd) != graph.domain_ips(d) {
                return None;
            }
            for &ip in graph.domain_ips(d) {
                if touched.ips.contains(&ip) || touched.prefixes.contains(&ip.prefix24()) {
                    return None;
                }
            }
            Some(entry.features)
        };
        reuse.clear();
        reuse.extend(graph.domain_indices().map(clean_row));
        let reuse = &*reuse;
        let reused = reuse.iter().filter(|r| r.is_some()).count();

        // Measure (or refresh) every domain in index order. Reused rows
        // only recompute the activity columns — the lookback window moved.
        let rows: Vec<[f32; FEATURE_COUNT]> =
            parallel_map_indexed(graph.domain_count(), config.effective_parallelism(), |i| {
                let d = DomainIdx(i as u32);
                match reuse[i] {
                    Some(mut features) => {
                        extractor.measure_activity(d, &mut features);
                        features
                    }
                    None => {
                        if graph.domain_label(d) == Label::Unknown {
                            extractor.measure(d)
                        } else {
                            let view = HiddenLabelView::new(graph, d);
                            extractor.measure_hidden(&view)
                        }
                    }
                }
            });

        // Split rows exactly the way the from-scratch path does: knowns in
        // domain-index order into the training set, unknowns in domain-index
        // order as scoring candidates. Refill the cache for tomorrow.
        let mut train = Dataset::new(FEATURE_COUNT);
        let mut train_ids = Vec::new();
        let mut unknown_ids = Vec::new();
        let mut unknown_rows = Vec::new();
        let mut cache = BTreeMap::new();
        for (i, row) in rows.iter().enumerate() {
            let d = DomainIdx(i as u32);
            let label = graph.domain_label(d);
            let id = graph.domain_id(d);
            if label == Label::Unknown {
                unknown_ids.push(id);
                unknown_rows.push(*row);
            } else {
                train.push(row, label == Label::Malware);
                train_ids.push(id);
            }
            cache.insert(
                id,
                CacheEntry {
                    label,
                    features: *row,
                },
            );
        }
        self.prev = Some(PrevDay {
            // segugio-lint: allow(H2, the cache must own yesterday's pruned graph to diff tomorrow's against — one O(graph) copy per day)
            pruned: graph.clone(),
            cache,
        });
        DayFeatures {
            train,
            train_ids,
            unknown_ids,
            unknown_rows,
            reused,
        }
    }

    /// Drops the feature cache and previous-day graph. The delta graph and
    /// rolling abuse index keep advancing — they track traffic and the
    /// pDNS window, not the measurement state.
    ///
    /// Must be called whenever a day's snapshot was built but its features
    /// were *not* measured (e.g. the day had no trainable seeds): the next
    /// `measure_day` would otherwise diff against a stale day while
    /// `touched` only covers the latest single-day advance.
    pub fn reset_cache(&mut self) {
        self.prev = None;
    }

    /// Drops *all* cross-day state — delta graph, rolling abuse index,
    /// touched set and feature cache — returning the engine to its
    /// just-constructed state. The next day is built from scratch, exactly
    /// like a fresh engine's first day.
    ///
    /// Required whenever the pDNS feed the engine has been advancing
    /// against is no longer trustworthy — e.g. a blanked-then-restored
    /// feed: [`RollingAbuseIndex`](segugio_pdns::RollingAbuseIndex) evicts
    /// leaving days by re-reading them from the *current* feed, so state
    /// carried across an inconsistent feed would silently diverge from the
    /// from-scratch path. A full reset is always parity-safe.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Serializes the engine's durable cross-day state — the delta
    /// baseline (yesterday's unpruned graph), the rolling abuse window,
    /// and the previous-day feature cache — as versioned text, appended to
    /// `out`. The single-advance `touched` set and the dirty-set scratch
    /// columns are deliberately skipped: the next
    /// [`build_snapshot`](Self::build_snapshot) overwrites all of them
    /// before anything reads them, so a resumed engine is parity-identical
    /// to one that never stopped.
    pub(crate) fn write_text(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("engine v1\n");
        match &self.delta {
            Some(delta) => {
                out.push_str("delta 1\n");
                segugio_graph::write_graph(delta.prev(), out);
            }
            None => out.push_str("delta 0\n"),
        }
        self.rolling.write_text(out);
        match &self.prev {
            Some(prev) => {
                out.push_str("prev 1\n");
                segugio_graph::write_graph(&prev.pruned, out);
                let _ = writeln!(out, "cache {}", prev.cache.len());
                for (id, entry) in &prev.cache {
                    let label = match entry.label {
                        Label::Malware => 'M',
                        Label::Benign => 'B',
                        Label::Unknown => 'U',
                    };
                    let _ = write!(out, "c {} {label}", id.0);
                    for f in &entry.features {
                        let _ = write!(out, " {:08x}", f.to_bits());
                    }
                    out.push('\n');
                }
            }
            None => out.push_str("prev 0\n"),
        }
        out.push_str("end-engine\n");
    }

    /// Parses the state [`write_text`](Self::write_text) produced,
    /// consuming lines through `end-engine`. The delta builder is
    /// reconstructed from its serialized baseline graph via
    /// [`DeltaBuilder::new`]; scratch state starts empty.
    pub(crate) fn read_text<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let header = lines.next().ok_or("missing engine header")?;
        if header != "engine v1" {
            return Err(format!("bad engine header: {header:?}"));
        }
        let delta = match lines.next() {
            Some("delta 0") => None,
            Some("delta 1") => {
                let graph = segugio_graph::read_graph(lines)?;
                Some(DeltaBuilder::new(&graph))
            }
            other => return Err(format!("bad delta marker: {other:?}")),
        };
        let rolling = RollingAbuseIndex::read_text(lines)?;
        let prev = match lines.next() {
            Some("prev 0") => None,
            Some("prev 1") => {
                let pruned = segugio_graph::read_graph(lines)?;
                let cache_line = lines.next().ok_or("missing cache header")?;
                let count: usize = cache_line
                    .strip_prefix("cache ")
                    .ok_or_else(|| format!("bad cache header: {cache_line:?}"))?
                    .parse()
                    .map_err(|e| format!("bad cache count: {e}"))?;
                let mut cache = BTreeMap::new();
                for _ in 0..count {
                    let line = lines.next().ok_or("truncated cache section")?;
                    let mut parts = line.split_ascii_whitespace();
                    if parts.next() != Some("c") {
                        return Err(format!("bad cache line: {line:?}"));
                    }
                    let id: u32 = parts
                        .next()
                        .ok_or("cache line missing domain id")?
                        .parse()
                        .map_err(|e| format!("bad cache domain id: {e}"))?;
                    let label = match parts.next() {
                        Some("M") => Label::Malware,
                        Some("B") => Label::Benign,
                        Some("U") => Label::Unknown,
                        other => return Err(format!("bad cache label: {other:?}")),
                    };
                    let mut features = [0.0f32; FEATURE_COUNT];
                    for slot in &mut features {
                        let bits = parts.next().ok_or("cache line missing feature column")?;
                        let bits = u32::from_str_radix(bits, 16)
                            .map_err(|e| format!("bad feature bits: {e}"))?;
                        *slot = f32::from_bits(bits);
                    }
                    if parts.next().is_some() {
                        return Err(format!("trailing tokens on cache line: {line:?}"));
                    }
                    let dup = cache.insert(DomainId(id), CacheEntry { label, features });
                    if dup.is_some() {
                        return Err(format!("duplicate cache entry for domain {id}"));
                    }
                }
                Some(PrevDay { pruned, cache })
            }
            other => return Err(format!("bad prev marker: {other:?}")),
        };
        match lines.next() {
            Some("end-engine") => {}
            other => return Err(format!("missing end-engine, got {other:?}")),
        }
        Ok(IncrementalEngine {
            delta,
            rolling,
            touched: AbuseDelta::default(),
            prev,
            machine_changed: Vec::new(),
            reuse: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::build_training_set;
    use segugio_traffic::{IspConfig, IspNetwork};

    /// The engine's snapshot and per-day features must equal the
    /// from-scratch path exactly, day after day.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn engine_matches_scratch_path() {
        let mut isp = IspNetwork::new(IspConfig::tiny(77));
        isp.warm_up(16);
        let config = SegugioConfig::default();
        let mut engine = IncrementalEngine::new();
        for _ in 0..5 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let scratch = DaySnapshot::build(&input, &config);
            let inc = engine.build_snapshot(&input, &config);
            assert_eq!(inc.abuse, scratch.abuse, "abuse index must match");
            assert_eq!(inc.prune_stats, scratch.prune_stats);
            assert_eq!(inc.unpruned_counts, scratch.unpruned_counts);
            assert_eq!(
                inc.graph.domain_label_counts(),
                scratch.graph.domain_label_counts()
            );

            let (scratch_train, scratch_ids) =
                build_training_set(&scratch, isp.activity(), &config);
            let features = engine.measure_day(&inc, isp.activity(), &config);
            assert_eq!(features.train_ids, scratch_ids);
            assert_eq!(features.train.len(), scratch_train.len());
            for i in 0..scratch_train.len() {
                assert_eq!(
                    features.train.row(i),
                    scratch_train.row(i),
                    "training row {i} diverged"
                );
                assert_eq!(features.train.label(i), scratch_train.label(i));
            }
            // Unknown rows equal a direct measurement.
            let extractor = FeatureExtractor::new(
                &scratch.graph,
                isp.activity(),
                &scratch.abuse,
                config.features,
            );
            for (id, row) in features.unknown_ids.iter().zip(&features.unknown_rows) {
                let d = scratch.graph.domain_idx(*id).expect("unknown in graph");
                assert_eq!(row, &extractor.measure(d), "unknown row for {id}");
            }
        }
    }

    /// After `reset_cache` the next day re-measures everything — and still
    /// matches the scratch path.
    #[test]
    #[cfg_attr(miri, ignore = "multi-day ISP simulation is too slow under Miri")]
    fn reset_cache_recovers() {
        let mut isp = IspNetwork::new(IspConfig::tiny(78));
        isp.warm_up(16);
        let config = SegugioConfig::default();
        let mut engine = IncrementalEngine::new();
        for day in 0..4 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: isp.pdns(),
                blacklist: isp.commercial_blacklist(),
                whitelist: isp.whitelist(),
                hidden: None,
            };
            let inc = engine.build_snapshot(&input, &config);
            if day == 1 {
                // Simulate a skipped day: snapshot built, features not
                // measured.
                engine.reset_cache();
                continue;
            }
            let scratch = DaySnapshot::build(&input, &config);
            let (scratch_train, scratch_ids) =
                build_training_set(&scratch, isp.activity(), &config);
            let features = engine.measure_day(&inc, isp.activity(), &config);
            assert_eq!(features.train_ids, scratch_ids);
            for i in 0..scratch_train.len() {
                assert_eq!(features.train.row(i), scratch_train.row(i));
            }
        }
    }
}
