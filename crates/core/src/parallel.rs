//! Deterministic fork-join helpers for the per-day hot path.
//!
//! Training-set extraction and unknown-domain scoring are embarrassingly
//! parallel: every domain's feature vector depends only on the immutable
//! snapshot. The helpers here chunk an index range over scoped worker
//! threads and merge results **in index order**, so the output is
//! bit-for-bit identical to the serial loop no matter how many workers run
//! or how their execution interleaves.

/// Resolves a `parallelism` knob to a concrete worker count.
///
/// `None` means "use every available core"; `Some(n)` pins the count
/// (clamped to at least 1). `Some(1)` is the exact serial path — no
/// threads are spawned at all.
pub fn resolve_parallelism(knob: Option<usize>) -> usize {
    match knob {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `0..len` on `threads` workers, returning the results in
/// index order.
///
/// The range is split into `threads` contiguous chunks; each worker fills
/// its own disjoint slice of the output, so no synchronization is needed
/// beyond the final join and the merged vector equals the serial
/// `(0..len).map(f).collect()` exactly.
pub fn parallel_map_indexed<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(len).max(1);
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    let joined = crossbeam::thread::scope(|scope| {
        for (w, out) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = w * chunk;
                for (k, slot) in out.iter_mut().enumerate() {
                    *slot = Some(f(base + k));
                }
            });
        }
    });
    if let Err(payload) = joined {
        // A worker panicked; propagate the original panic untouched.
        std::panic::resume_unwind(payload);
    }
    // Each worker fills its whole disjoint chunk, so every slot is Some
    // once the scope joins cleanly.
    let merged: Vec<R> = slots.into_iter().flatten().collect();
    debug_assert_eq!(
        merged.len(),
        len,
        "every index filled by exactly one worker"
    );
    merged
}

/// Fills `out` on `threads` workers, handing each worker one contiguous
/// chunk as `fill(base_index, chunk)`.
///
/// The blocked-scoring counterpart of [`parallel_map_indexed`]: the caller
/// owns the output storage (a reusable buffer), so repeated calls allocate
/// nothing, and a worker can process its chunk in cache-sized blocks
/// instead of one index at a time. Chunk boundaries only affect which
/// worker computes an element, never its value, so the result equals the
/// serial `fill(0, out)` exactly.
pub fn parallel_map_fill<T, F>(out: &mut [T], threads: usize, fill: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    let threads = threads.min(len).max(1);
    if threads == 1 {
        fill(0, out);
        return;
    }
    let chunk = len.div_ceil(threads);
    let joined = crossbeam::thread::scope(|scope| {
        for (w, slice) in out.chunks_mut(chunk).enumerate() {
            let fill = &fill;
            scope.spawn(move |_| {
                fill(w * chunk, slice);
            });
        }
    });
    if let Err(payload) = joined {
        // A worker panicked; propagate the original panic untouched.
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_clamps_and_defaults() {
        assert_eq!(resolve_parallelism(Some(0)), 1);
        assert_eq!(resolve_parallelism(Some(3)), 3);
        assert!(resolve_parallelism(None) >= 1);
    }

    #[test]
    fn map_is_index_ordered_at_any_width() {
        let serial: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let par = parallel_map_indexed(97, threads, |i| i * i);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_ranges() {
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn fill_matches_serial_at_any_width() {
        let mut serial = vec![0usize; 97];
        parallel_map_fill(&mut serial, 1, |base, out| {
            for (k, s) in out.iter_mut().enumerate() {
                *s = (base + k) * (base + k);
            }
        });
        for threads in [2, 3, 8, 97, 200] {
            let mut par = vec![0usize; 97];
            parallel_map_fill(&mut par, threads, |base, out| {
                for (k, s) in out.iter_mut().enumerate() {
                    *s = (base + k) * (base + k);
                }
            });
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn fill_handles_empty_output() {
        let mut empty: Vec<usize> = Vec::new();
        parallel_map_fill(&mut empty, 4, |_, out| {
            assert!(out.is_empty());
        });
    }
}
