//! Property-based tests for the checkpoint codec, mirroring
//! `crates/ml/tests/prop_persist.rs`.
//!
//! Two groups:
//!
//! 1. **Hostile input** — token soup biased toward the checkpoint grammar
//!    must never panic, hang, or over-allocate: every malformation is a
//!    typed [`CheckpointError`]. The soup is fed both raw (exercising the
//!    header/length/CRC layer) and wrapped in a *valid* header with a
//!    correct length and checksum (reaching the payload parser, which the
//!    checksum would otherwise shield from almost every random input).
//! 2. **Fixed point** — a structurally valid checkpoint document with
//!    adversarial contents (NaN/±inf thresholds, arbitrary flag maps and
//!    pending records, an embedded trained model) parses, and save→load→
//!    save is **byte-identical** — thresholds round-trip through `to_bits`
//!    hex, so even NaN payloads survive exactly.
//!
//! [`CheckpointError`]: segugio_core::CheckpointError

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;

use proptest::prelude::*;

use segugio_core::{crc32, Segugio, SegugioConfig, Tracker, FEATURE_COUNT};
use segugio_ml::Dataset;

// ---------------------------------------------------------------------------
// Group 1: hostile input.

/// Tokens biased toward the checkpoint grammar so generated soup reaches
/// deep parser states (map loops, the embedded model, the engine and
/// graph sections) instead of dying at the first line.
fn token() -> impl Strategy<Value = String> {
    (0u32..28, 0u32..40, -2.0f32..2.0).prop_map(|(kind, n, x)| match kind {
        0 => "segugio-checkpoint".to_string(),
        1 => "v1".to_string(),
        2 => "tracker".to_string(),
        3 => "flagged".to_string(),
        4 => "confirmed".to_string(),
        5 => "days-processed".to_string(),
        6 => "last-day".to_string(),
        7 => "pending".to_string(),
        8 => "model".to_string(),
        9 => "engine".to_string(),
        10 => "delta".to_string(),
        11 => "prev".to_string(),
        12 => "cache".to_string(),
        13 => "rolling".to_string(),
        14 => "graph".to_string(),
        15 => "end-tracker".to_string(),
        16 => "end-engine".to_string(),
        17 => ["S", "F", "R", "D", "c", "d", "M", "B", "U"][(n % 9) as usize].to_string(),
        // Newlines are weighted up: every parser is line-oriented.
        18..=21 => "\n".to_string(),
        // Parses as usize but would be a ~1 TiB allocation if any reader
        // trusted it for `Vec::with_capacity`.
        22 => "68719476736".to_string(),
        // Overflows usize on 64-bit: must surface as a malformed field.
        23 => "99999999999999999999".to_string(),
        24 => format!("{:08x}", n.wrapping_mul(0x9E37_79B9)),
        25 => format!("{x}"),
        26 => format!("-{n}"),
        _ => n.to_string(),
    })
}

fn hostile_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(token(), 0..150).prop_map(|tokens| tokens.join(" "))
}

/// Wraps arbitrary payload text in a header whose length and CRC are
/// *correct*, so the payload parser actually runs.
fn with_valid_header(payload: &str) -> String {
    format!(
        "segugio-checkpoint v1 {} {:08x}\n{payload}",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

// ---------------------------------------------------------------------------
// Group 2: fixed point.

/// f32 values weighted toward the edge cases the text format must keep.
fn weird_f32() -> impl Strategy<Value = f32> {
    (0u32..12, -1e6f32..1e6).prop_map(|(kind, v)| match kind {
        6 => f32::NAN,
        7 => f32::INFINITY,
        8 => f32::NEG_INFINITY,
        9 => -0.0,
        10 => f32::MIN_POSITIVE,
        _ => v,
    })
}

/// A model trained once on a handcrafted two-class fixture; its exact
/// serialized text is embedded in generated checkpoints.
fn model_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let mut data = Dataset::new(FEATURE_COUNT);
        for i in 0..24u32 {
            let mut row = [0.0f32; FEATURE_COUNT];
            row[0] = i as f32;
            row[1] = (i % 5) as f32 * 0.7;
            row[2] = if i % 2 == 0 { 3.0 } else { -1.5 };
            data.push(&row, i % 2 == 0);
        }
        let model = Segugio::train_prepared(&data, &SegugioConfig::default())
            .expect("handcrafted fixture has both classes");
        model.save_to_string()
    })
}

/// One pending-degradation record: (tag index, day).
fn pending_records() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((0u8..4, 0u32..5000), 0..6)
}

/// A sorted unique-key map, built through `vec` since the vendored
/// proptest subset has no `btree_map` strategy.
fn flag_map(lo: u32, hi: u32) -> impl Strategy<Value = BTreeMap<u32, u32>> {
    proptest::collection::vec((lo..hi, 0u32..5000), 0..20)
        .prop_map(|pairs| pairs.into_iter().collect())
}

fn confirm_map() -> impl Strategy<Value = BTreeMap<u32, (u32, u32)>> {
    proptest::collection::vec((10_000u32..20_000, (0u32..5000, 0u32..5000)), 0..20)
        .prop_map(|pairs| pairs.into_iter().collect())
}

/// `Option` via a coin flip — the vendored subset has no `option::of`.
fn maybe<S: Strategy>(inner: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), inner).prop_map(|(some, v)| some.then_some(v))
}

/// Renders a valid checkpoint document in the codec's exact layout from
/// generated contents. The payload matches `Tracker::save_to_string`'s
/// formatting byte for byte, so a parse → re-save must reproduce it.
#[allow(clippy::too_many_arguments)]
fn render_checkpoint(
    flagged: &BTreeMap<u32, u32>,
    confirmed: &BTreeMap<u32, (u32, u32)>,
    days_processed: usize,
    last_day: Option<u32>,
    pending: &[(u8, u32)],
    model: Option<f32>,
    trained_on: u32,
) -> String {
    let mut p = String::new();
    p.push_str("tracker v1\n");
    let _ = write!(p, "flagged {}", flagged.len());
    for (d, day) in flagged {
        let _ = write!(p, " {d} {day}");
    }
    p.push('\n');
    let _ = write!(p, "confirmed {}", confirmed.len());
    for (d, (f, c)) in confirmed {
        let _ = write!(p, " {d} {f} {c}");
    }
    p.push('\n');
    let _ = writeln!(p, "days-processed {days_processed}");
    match last_day {
        Some(d) => {
            let _ = writeln!(p, "last-day 1 {d}");
        }
        None => p.push_str("last-day 0\n"),
    }
    let _ = write!(p, "pending {}", pending.len());
    for &(tag, day) in pending {
        match tag {
            0 => {
                let _ = write!(p, " S {day}");
            }
            1 => p.push_str(" F"),
            2 => {
                let _ = write!(p, " R {day}");
            }
            _ => {
                let _ = write!(p, " D {day}");
            }
        }
    }
    p.push('\n');
    match model {
        Some(threshold) => {
            let text = model_text();
            let _ = writeln!(
                p,
                "model 1 {:08x} {trained_on} {}",
                threshold.to_bits(),
                text.lines().count()
            );
            p.push_str(text);
            if !text.ends_with('\n') {
                p.push('\n');
            }
        }
        None => p.push_str("model 0\n"),
    }
    // The simplest valid engine: nothing carried over yet.
    p.push_str(
        "engine v1\ndelta 0\nrolling v1 no-window\ndomains 0\nend-rolling\nprev 0\nend-engine\n",
    );
    p.push_str("end-tracker\n");
    with_valid_header(&p)
}

proptest! {
    /// Raw token soup never panics the loader: the header, length and
    /// checksum layers reject it with a typed error (or, astronomically
    /// unlikely, it parses — which is also fine).
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn raw_soup_is_rejected_or_parses(text in hostile_text()) {
        match Tracker::load_from_str(&text) {
            Ok(tracker) => {
                // Whatever parses must re-save and re-load stably.
                let saved = tracker.save_to_string();
                prop_assert!(Tracker::load_from_str(&saved).is_ok());
            }
            Err(e) => {
                // Typed errors always render a nonempty message.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Soup wrapped in a *valid* header — correct length and CRC — reaches
    /// the payload parser, which must be equally total: typed error or a
    /// stable tracker, never a panic, hang, or giant allocation.
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn checksummed_soup_is_rejected_or_parses(payload in hostile_text()) {
        let doc = with_valid_header(&payload);
        match Tracker::load_from_str(&doc) {
            Ok(tracker) => {
                let saved = tracker.save_to_string();
                prop_assert!(Tracker::load_from_str(&saved).is_ok());
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// A structurally valid document with adversarial contents parses, and
    /// save→load→save is a byte-identical fixed point — including NaN and
    /// ±inf thresholds, which round-trip through `to_bits` hex exactly.
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn valid_documents_are_a_byte_fixed_point(
        flagged in flag_map(0, 10_000),
        confirmed in confirm_map(),
        days_processed in 0usize..4000,
        last_day in maybe(0u32..5000),
        pending in pending_records(),
        model in (maybe(weird_f32()), 0u32..5000),
    ) {
        let (threshold, trained_on) = model;
        let doc = render_checkpoint(
            &flagged, &confirmed, days_processed, last_day, &pending, threshold, trained_on,
        );
        let tracker = Tracker::load_from_str(&doc).expect("structurally valid checkpoint parses");
        prop_assert_eq!(tracker.days_processed(), days_processed);
        prop_assert_eq!(tracker.last_day().map(|d| d.0), last_day);
        prop_assert_eq!(tracker.pending().count(), flagged.len());

        // The hand-rendered document IS the codec's output format.
        let saved = tracker.save_to_string();
        prop_assert_eq!(&saved, &doc, "save(load(doc)) must equal doc byte-for-byte");

        // And the loop is closed: load(save(·)) → save is still identical.
        let reloaded = Tracker::load_from_str(&saved).expect("round-tripped checkpoint parses");
        prop_assert_eq!(reloaded.save_to_string(), saved);
    }

    /// Corrupting any single byte of a valid document is always detected:
    /// the header length/CRC layers make the loader fail with a typed
    /// error rather than silently accepting damaged state. (Flips inside
    /// the CRC's own hex digits are detected as a header/CRC mismatch
    /// too.)
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn single_byte_corruption_is_always_detected(
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let doc = render_checkpoint(
            &BTreeMap::from([(7u32, 3u32)]),
            &BTreeMap::new(),
            5,
            Some(9),
            &[(2, 4)],
            Some(0.25),
            3,
        );
        let mut bytes = doc.clone().into_bytes();
        let i = (at % bytes.len() as u64) as usize;
        bytes[i] ^= flip;
        if bytes == doc.as_bytes() {
            return Ok(()); // the flip was a no-op (can't happen with flip != 0)
        }
        prop_assert!(
            Tracker::load_from_bytes(&bytes).is_err(),
            "flipping byte {i} by {flip:#04x} went undetected"
        );
    }
}
