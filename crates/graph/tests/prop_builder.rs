//! Property tests for `GraphBuilder::build`: under duplicate-heavy random
//! edge streams the CSR must be valid (sorted offsets, sorted unique
//! adjacency, both directions consistent with the deduplicated edge set)
//! and identical at every parallelism setting.

use std::collections::BTreeSet;

use proptest::prelude::*;
use segugio_graph::{BehaviorGraph, GraphBuilder};
use segugio_model::{Day, DomainId, MachineId};

/// Builds a graph from raw `(machine, domain)` pairs at a given thread
/// count.
fn build(edges: &[(u32, u32)], threads: usize) -> BehaviorGraph {
    let mut b = GraphBuilder::new(Day(3));
    b.set_parallelism(threads);
    for &(m, d) in edges {
        b.add_query(MachineId(m), DomainId(d));
    }
    b.build()
}

/// Flattens a graph's full adjacency (both CSR directions) into comparable
/// vectors of external ids.
fn adjacency(g: &BehaviorGraph) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let by_domain = g
        .domain_indices()
        .map(|d| g.machines_of(d).map(|m| g.machine_id(m).0).collect())
        .collect();
    let by_machine = g
        .machine_indices()
        .map(|m| g.domains_of(m).map(|d| g.domain_id(d).0).collect())
        .collect();
    (by_domain, by_machine)
}

proptest! {
    /// Duplicate-heavy streams (few distinct machines/domains, many raw
    /// pairs — sized past the builder's parallel cutover) produce a valid
    /// sorted CSR that matches a set-based reference in both directions.
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn csr_is_valid_under_duplicate_heavy_streams(
        edges in proptest::collection::vec((0u32..40, 0u32..60), 0..3000)
    ) {
        let g = build(&edges, 1);
        let reference: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        prop_assert_eq!(g.edge_count(), reference.len());

        let distinct_machines: BTreeSet<u32> = reference.iter().map(|&(m, _)| m).collect();
        let distinct_domains: BTreeSet<u32> = reference.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(g.machine_count(), distinct_machines.len());
        prop_assert_eq!(g.domain_count(), distinct_domains.len());

        let mut edges_from_domain_side = 0usize;
        for d in g.domain_indices() {
            let did = g.domain_id(d).0;
            let ms: Vec<u32> = g.machines_of(d).map(|m| g.machine_id(m).0).collect();
            prop_assert!(
                ms.windows(2).all(|w| w[0] < w[1]),
                "domain {} adjacency not sorted-unique: {:?}", did, ms
            );
            let expect: Vec<u32> = reference
                .iter()
                .filter(|&&(_, dd)| dd == did)
                .map(|&(m, _)| m)
                .collect();
            prop_assert_eq!(ms.clone(), expect, "domain {} adjacency wrong", did);
            edges_from_domain_side += ms.len();
        }
        prop_assert_eq!(edges_from_domain_side, g.edge_count());

        let mut edges_from_machine_side = 0usize;
        for m in g.machine_indices() {
            let mid = g.machine_id(m).0;
            let ds: Vec<u32> = g.domains_of(m).map(|d| g.domain_id(d).0).collect();
            prop_assert!(
                ds.windows(2).all(|w| w[0] < w[1]),
                "machine {} adjacency not sorted-unique: {:?}", mid, ds
            );
            let expect: Vec<u32> = reference
                .iter()
                .filter(|&&(mm, _)| mm == mid)
                .map(|&(_, d)| d)
                .collect();
            prop_assert_eq!(ds.clone(), expect, "machine {} adjacency wrong", mid);
            edges_from_machine_side += ds.len();
        }
        prop_assert_eq!(edges_from_machine_side, g.edge_count());
    }

    /// `BehaviorGraph::validate` accepts every graph the builder produces,
    /// at every parallelism setting (structural invariants hold end to end:
    /// sorted ids, CSR offsets, in-bounds sorted adjacency, edge symmetry,
    /// malware-degree cache).
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn built_graphs_pass_structural_validation(
        edges in proptest::collection::vec((0u32..40, 0u32..60), 0..3000)
    ) {
        for threads in [1usize, 4] {
            let g = build(&edges, threads);
            prop_assert_eq!(g.validate(), Ok(()), "threads = {}", threads);
        }
    }

    /// The built graph is identical at every parallelism setting.
    #[test]
    #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
    fn build_is_identical_at_any_parallelism(
        edges in proptest::collection::vec((0u32..30, 0u32..50), 0..3000)
    ) {
        let serial = build(&edges, 1);
        let serial_adj = adjacency(&serial);
        for threads in [2usize, 4, 8] {
            let parallel = build(&edges, threads);
            prop_assert_eq!(parallel.edge_count(), serial.edge_count());
            prop_assert_eq!(adjacency(&parallel), serial_adj.clone(), "threads = {}", threads);
        }
    }
}
