//! Diagnostic statistics over a behavior graph.
//!
//! Operators sanity-check a day's graph before trusting its detections:
//! degree distributions locate proxies and dead hosts, label-conditioned
//! summaries show whether the seed ground truth reached enough of the
//! graph, and the density figures feed capacity planning.

use segugio_model::Label;

use crate::graph::BehaviorGraph;

/// Five-number summary (plus mean) of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// 50th percentile.
    pub median: usize,
    /// 99th percentile.
    pub p99: usize,
    /// Largest degree.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
}

impl DegreeSummary {
    fn from_degrees(mut degrees: Vec<usize>) -> Self {
        if degrees.is_empty() {
            return DegreeSummary {
                min: 0,
                median: 0,
                p99: 0,
                max: 0,
                mean: 0.0,
            };
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let at = |pct: f64| degrees[(((n - 1) as f64) * pct).round() as usize];
        DegreeSummary {
            min: degrees[0],
            median: at(0.5),
            p99: at(0.99),
            max: degrees[n - 1],
            mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        }
    }
}

/// A full diagnostic snapshot of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Machine-degree summary.
    pub machine_degrees: DegreeSummary,
    /// Domain-degree summary.
    pub domain_degrees: DegreeSummary,
    /// Domains per label `(malware, benign, unknown)`.
    pub domain_labels: (usize, usize, usize),
    /// Machines per label `(malware, benign, unknown)`.
    pub machine_labels: (usize, usize, usize),
    /// Edge density: edges / (machines × domains).
    pub density: f64,
    /// Mean degree of *malware-labeled* domains — how many victims the
    /// known control domains have.
    pub mean_malware_domain_degree: f64,
    /// Fraction of edges incident to an unknown domain (the classification
    /// surface).
    pub unknown_edge_fraction: f64,
}

impl GraphStats {
    /// Computes the statistics for `graph`.
    pub fn compute(graph: &BehaviorGraph) -> Self {
        let machine_degrees = DegreeSummary::from_degrees(
            graph
                .machine_indices()
                .map(|m| graph.machine_degree(m))
                .collect(),
        );
        let domain_degrees = DegreeSummary::from_degrees(
            graph
                .domain_indices()
                .map(|d| graph.domain_degree(d))
                .collect(),
        );
        let mut malware_degree_sum = 0usize;
        let mut malware_count = 0usize;
        let mut unknown_edges = 0usize;
        for d in graph.domain_indices() {
            match graph.domain_label(d) {
                Label::Malware => {
                    malware_degree_sum += graph.domain_degree(d);
                    malware_count += 1;
                }
                Label::Unknown => unknown_edges += graph.domain_degree(d),
                Label::Benign => {}
            }
        }
        let nm = graph.machine_count();
        let nd = graph.domain_count();
        let ne = graph.edge_count();
        GraphStats {
            machine_degrees,
            domain_degrees,
            domain_labels: graph.domain_label_counts(),
            machine_labels: graph.machine_label_counts(),
            density: if nm == 0 || nd == 0 {
                0.0
            } else {
                ne as f64 / (nm as f64 * nd as f64)
            },
            mean_malware_domain_degree: if malware_count == 0 {
                0.0
            } else {
                malware_degree_sum as f64 / malware_count as f64
            },
            unknown_edge_fraction: if ne == 0 {
                0.0
            } else {
                unknown_edges as f64 / ne as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::labeling::apply_seed_labels;
    use segugio_model::{Day, DomainId, E2ldId, MachineId};

    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(0));
        // 4 machines; benign domain 1 queried by all, malware domain 2 by
        // two machines, unknown domain 3 by one.
        for m in 0..4u32 {
            b.add_query(MachineId(m), DomainId(1));
        }
        b.add_query(MachineId(0), DomainId(2));
        b.add_query(MachineId(1), DomainId(2));
        b.add_query(MachineId(2), DomainId(3));
        for d in [1u32, 2, 3] {
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d == DomainId(2), |e| e == E2ldId(1));
        g
    }

    #[test]
    fn stats_reflect_structure() {
        let s = GraphStats::compute(&sample());
        assert_eq!(s.domain_labels, (1, 1, 1));
        assert_eq!(s.machine_labels.0, 2, "two infected machines");
        assert_eq!(s.machine_degrees.min, 1);
        assert_eq!(s.machine_degrees.max, 2);
        assert_eq!(s.domain_degrees.max, 4);
        assert!((s.mean_malware_domain_degree - 2.0).abs() < 1e-9);
        // 1 of 7 edges goes to the unknown domain.
        assert!((s.unknown_edge_fraction - 1.0 / 7.0).abs() < 1e-9);
        let expected_density = 7.0 / (4.0 * 3.0);
        assert!((s.density - expected_density).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let g = GraphBuilder::new(Day(0)).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.machine_degrees.max, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.unknown_edge_fraction, 0.0);
        assert_eq!(s.mean_malware_domain_degree, 0.0);
    }

    #[test]
    fn degree_summary_percentiles() {
        let s = DegreeSummary::from_degrees((1..=100).collect());
        assert_eq!(s.min, 1);
        // Nearest-rank on 0-indexed data: round(99 * 0.5) = index 50.
        assert_eq!(s.median, 51);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }
}
