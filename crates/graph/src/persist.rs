//! Plain-text persistence of [`BehaviorGraph`].
//!
//! The checkpoint subsystem in `segugio-core` must carry yesterday's CSR
//! across a process restart. This module gives the graph the same
//! deliberately simple, versioned, line-oriented treatment as the model
//! persistence in `segugio-ml`: no external serialization dependencies,
//! deterministic output, and a loader that never panics on hostile bytes.
//!
//! Only the machine-side CSR is written; the domain-side CSR is
//! reconstructed on load by the same prefix-sum + ascending-machine scatter
//! the delta builder uses, so the two directions can never disagree in a
//! well-formed file. `machine_malware_degree` is likewise recomputed from
//! the loaded labels. Every load ends with [`BehaviorGraph::validate`], so
//! a graph that parses but violates a structural invariant is rejected with
//! a typed error instead of corrupting downstream phases.

use segugio_model::{Day, DomainId, E2ldId, Ipv4, Label, MachineId};

use crate::graph::BehaviorGraph;

/// Serializes `graph` as deterministic text lines appended to `out`.
///
/// The format is a fixed sequence of keyword-prefixed lines terminated by
/// `end-graph`; [`read_graph`] consumes exactly this much from a line
/// iterator, so graphs embed cleanly inside larger checkpoint documents.
pub fn write_graph(graph: &BehaviorGraph, out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "graph v1 {} {} {} {} {}",
        graph.day.0,
        graph.machines.len(),
        graph.domains.len(),
        graph.m_adj.len(),
        graph.ip_pool.len()
    );
    write_u32_line(out, "machines", graph.machines.iter().map(|m| m.0));
    write_u32_line(out, "domains", graph.domains.iter().map(|d| d.0));
    write_u32_line(out, "e2ld", graph.domain_e2ld.iter().map(|e| e.0));
    write_u32_line(out, "ip-off", graph.ip_off.iter().copied());
    write_u32_line(out, "ip-pool", graph.ip_pool.iter().map(|ip| ip.0));
    write_u32_line(out, "m-off", graph.m_off.iter().copied());
    write_u32_line(out, "m-adj", graph.m_adj.iter().copied());
    write_label_line(out, "d-labels", &graph.domain_labels);
    write_label_line(out, "m-labels", &graph.machine_labels);
    out.push_str("end-graph\n");
}

fn write_u32_line(out: &mut String, keyword: &str, values: impl Iterator<Item = u32>) {
    use std::fmt::Write as _;
    out.push_str(keyword);
    for v in values {
        let _ = write!(out, " {v}");
    }
    out.push('\n');
}

fn write_label_line(out: &mut String, keyword: &str, labels: &[Label]) {
    out.push_str(keyword);
    out.push(' ');
    if labels.is_empty() {
        out.push('-');
    } else {
        for &l in labels {
            out.push(match l {
                Label::Malware => 'M',
                Label::Benign => 'B',
                Label::Unknown => 'U',
            });
        }
    }
    out.push('\n');
}

/// Reads one graph serialized by [`write_graph`] from `lines`, consuming up
/// to and including its `end-graph` terminator.
///
/// # Errors
///
/// Returns a description of the first malformed line or violated structural
/// invariant. The loader never panics and performs no allocation sized by
/// untrusted header counts — a truncated or garbled stream fails with
/// "unexpected end" / parse errors.
pub fn read_graph<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<BehaviorGraph, String> {
    let header = next_line(lines, "graph header")?;
    let mut parts = header.split_whitespace();
    if (parts.next(), parts.next()) != (Some("graph"), Some("v1")) {
        return Err("expected `graph v1` header".to_owned());
    }
    let day: u32 = field(parts.next(), "graph day")?;
    let nm: u32 = field(parts.next(), "machine count")?;
    let nd: u32 = field(parts.next(), "domain count")?;
    let ne: u32 = field(parts.next(), "edge count")?;
    let nip: u32 = field(parts.next(), "ip-pool count")?;
    if parts.next().is_some() {
        return Err("trailing tokens on graph header".to_owned());
    }

    let machines: Vec<MachineId> = read_u32_line(lines, "machines", nm)?
        .into_iter()
        .map(MachineId)
        .collect();
    let domains: Vec<DomainId> = read_u32_line(lines, "domains", nd)?
        .into_iter()
        .map(DomainId)
        .collect();
    let domain_e2ld: Vec<E2ldId> = read_u32_line(lines, "e2ld", nd)?
        .into_iter()
        .map(E2ldId)
        .collect();
    let ip_off = read_u32_line(lines, "ip-off", nd.saturating_add(1))?;
    let ip_pool: Vec<Ipv4> = read_u32_line(lines, "ip-pool", nip)?
        .into_iter()
        .map(Ipv4)
        .collect();
    let m_off = read_u32_line(lines, "m-off", nm.saturating_add(1))?;
    let m_adj = read_u32_line(lines, "m-adj", ne)?;
    let domain_labels = read_label_line(lines, "d-labels", nd)?;
    let machine_labels = read_label_line(lines, "m-labels", nm)?;
    let end = next_line(lines, "end-graph")?;
    if end.trim() != "end-graph" {
        return Err("expected `end-graph` terminator".to_owned());
    }

    // Pre-checks the domain-CSR scatter depends on (everything else is
    // caught by `validate` below): the machine offsets must be a
    // well-formed partition of `m_adj`, and every adjacency entry must name
    // an existing domain.
    if m_off.first() != Some(&0) {
        return Err("m-off must start at 0".to_owned());
    }
    if m_off.windows(2).any(|w| w[0] > w[1]) {
        return Err("m-off offsets decrease".to_owned());
    }
    if m_off.last().map(|&o| o as usize) != Some(m_adj.len()) {
        return Err("last m-off entry does not match the edge count".to_owned());
    }
    if m_adj.iter().any(|&d| d >= nd) {
        return Err("m-adj references a domain index out of bounds".to_owned());
    }

    // Domain CSR: count degrees, prefix-sum, then scatter by walking
    // machines in ascending order so each domain's querier list comes out
    // sorted — the same construction as the delta builder's step 6.
    let mut d_off: Vec<u32> = vec![0; nd as usize + 1];
    for &d in &m_adj {
        d_off[d as usize + 1] += 1;
    }
    for i in 0..nd as usize {
        d_off[i + 1] += d_off[i];
    }
    let mut cursor: Vec<u32> = d_off[..nd as usize].to_vec();
    let mut d_adj: Vec<u32> = vec![0; m_adj.len()];
    for mi in 0..nm as usize {
        let lo = m_off[mi] as usize;
        let hi = m_off[mi + 1] as usize;
        for &d in &m_adj[lo..hi] {
            d_adj[cursor[d as usize] as usize] = mi as u32;
            cursor[d as usize] += 1;
        }
    }

    // Malware degrees are a pure function of labels + adjacency; recompute
    // rather than trust the file.
    let mut machine_malware_degree: Vec<u32> = vec![0; nm as usize];
    for mi in 0..nm as usize {
        let lo = m_off[mi] as usize;
        let hi = m_off[mi + 1] as usize;
        machine_malware_degree[mi] = m_adj[lo..hi]
            .iter()
            .filter(|&&d| domain_labels[d as usize] == Label::Malware)
            .count() as u32;
    }

    let graph = BehaviorGraph {
        day: Day(day),
        machines,
        domains,
        domain_e2ld,
        ip_off,
        ip_pool,
        m_off,
        m_adj,
        d_off,
        d_adj,
        domain_labels,
        machine_labels,
        machine_malware_degree,
    };
    graph
        .validate()
        .map_err(|violation| format!("loaded graph fails validation: {violation}"))?;
    Ok(graph)
}

fn next_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    expected: &str,
) -> Result<&'a str, String> {
    lines
        .next()
        .ok_or_else(|| format!("unexpected end of input, expected {expected}"))
}

fn field<T: std::str::FromStr>(part: Option<&str>, what: &str) -> Result<T, String> {
    part.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

/// Reads a `keyword v v v …` line carrying exactly `count` u32 values.
fn read_u32_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    keyword: &str,
    count: u32,
) -> Result<Vec<u32>, String> {
    let line = next_line(lines, keyword)?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(keyword) {
        return Err(format!("expected `{keyword}` line"));
    }
    let mut values = Vec::new();
    for _ in 0..count {
        values.push(field(parts.next(), &format!("{keyword} value"))?);
    }
    if parts.next().is_some() {
        return Err(format!("trailing tokens on `{keyword}` line"));
    }
    Ok(values)
}

/// Reads a `keyword MBUU…` label line of exactly `count` labels (`-` when
/// empty).
fn read_label_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    keyword: &str,
    count: u32,
) -> Result<Vec<Label>, String> {
    let line = next_line(lines, keyword)?;
    let mut parts = line.split_whitespace();
    if parts.next() != Some(keyword) {
        return Err(format!("expected `{keyword}` line"));
    }
    let text = parts
        .next()
        .ok_or_else(|| format!("missing {keyword} label string"))?;
    if parts.next().is_some() {
        return Err(format!("trailing tokens on `{keyword}` line"));
    }
    if count == 0 {
        if text != "-" {
            return Err(format!("expected `-` for empty {keyword}"));
        }
        return Ok(Vec::new());
    }
    let mut labels = Vec::new();
    for c in text.chars() {
        labels.push(match c {
            'M' => Label::Malware,
            'B' => Label::Benign,
            'U' => Label::Unknown,
            other => return Err(format!("unknown label character {other:?} in {keyword}")),
        });
    }
    if labels.len() != count as usize {
        return Err(format!(
            "{keyword} has {} labels, expected {count}",
            labels.len()
        ));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::labeling::apply_seed_labels;

    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(7));
        b.add_query(MachineId(10), DomainId(100));
        b.add_query(MachineId(10), DomainId(200));
        b.add_query(MachineId(20), DomainId(200));
        b.add_query(MachineId(30), DomainId(100));
        b.add_query(MachineId(30), DomainId(300));
        b.set_e2ld(DomainId(100), E2ldId(1));
        b.set_e2ld(DomainId(200), E2ldId(2));
        b.set_e2ld(DomainId(300), E2ldId(2));
        b.add_resolution(DomainId(100), Ipv4::from_octets(10, 0, 0, 1));
        b.add_resolution(DomainId(100), Ipv4::from_octets(10, 0, 0, 2));
        b.add_resolution(DomainId(300), Ipv4::from_octets(45, 9, 1, 3));
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d == DomainId(300), |e| e == E2ldId(2));
        g
    }

    fn assert_same(a: &BehaviorGraph, b: &BehaviorGraph) {
        assert_eq!(a.day, b.day);
        assert_eq!(a.machines, b.machines);
        assert_eq!(a.domains, b.domains);
        assert_eq!(a.domain_e2ld, b.domain_e2ld);
        assert_eq!(a.ip_off, b.ip_off);
        assert_eq!(a.ip_pool, b.ip_pool);
        assert_eq!(a.m_off, b.m_off);
        assert_eq!(a.m_adj, b.m_adj);
        assert_eq!(a.d_off, b.d_off);
        assert_eq!(a.d_adj, b.d_adj);
        assert_eq!(a.domain_labels, b.domain_labels);
        assert_eq!(a.machine_labels, b.machine_labels);
        assert_eq!(a.machine_malware_degree, b.machine_malware_degree);
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let g = sample();
        let mut text = String::new();
        write_graph(&g, &mut text);
        let loaded = read_graph(&mut text.lines()).expect("round trip");
        assert_same(&g, &loaded);
        // Write is a fixed point.
        let mut again = String::new();
        write_graph(&loaded, &mut again);
        assert_eq!(text, again);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new(Day(0)).build();
        let mut text = String::new();
        write_graph(&g, &mut text);
        let loaded = read_graph(&mut text.lines()).expect("empty round trip");
        assert_same(&g, &loaded);
    }

    #[test]
    fn embedded_graph_leaves_trailing_lines() {
        let g = sample();
        let mut text = String::new();
        write_graph(&g, &mut text);
        text.push_str("next-section 42\n");
        let mut lines = text.lines();
        read_graph(&mut lines).expect("embedded graph");
        assert_eq!(lines.next(), Some("next-section 42"));
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "graph v2 0 0 0 0 0",
            "graph v1 0",
            "graph v1 0 0 0 0 0\nmachines extra",
            "graph v1 0 1 0 0 0\nmachines\ndomains 5\ne2ld 0\nip-off 0 0\nip-pool\nm-off 0\nm-adj\nd-labels X\nm-labels -\nend-graph",
            // Edge referencing a domain out of bounds.
            "graph v1 0 1 1 1 0\nmachines 1\ndomains 5\ne2ld 0\nip-off 0 0\nip-pool\nm-off 0 1\nm-adj 9\nd-labels U\nm-labels U\nend-graph",
            // Offsets that do not cover the edge list.
            "graph v1 0 1 1 1 0\nmachines 1\ndomains 5\ne2ld 0\nip-off 0 0\nip-pool\nm-off 0 0\nm-adj 0\nd-labels U\nm-labels U\nend-graph",
            // Unsorted node list survives parsing but fails validation.
            "graph v1 0 2 1 0 0\nmachines 5 3\ndomains 7\ne2ld 0\nip-off 0 0\nip-pool\nm-off 0 0 0\nm-adj\nd-labels U\nm-labels UU\nend-graph",
        ] {
            assert!(read_graph(&mut bad.lines()).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let g = sample();
        let mut text = String::new();
        write_graph(&g, &mut text);
        for cut in [1usize, 2, 4, 6, 8, 10] {
            let truncated: Vec<&str> = text.lines().take(cut).collect();
            assert!(
                read_graph(&mut truncated.clone().into_iter()).is_err(),
                "accepted a {cut}-line prefix"
            );
        }
    }
}
