//! Label hiding for training-set preparation (paper Section II-A3, Fig. 5).
//!
//! Segugio's features are defined for *unknown* domains. To measure features
//! for a domain whose ground truth is known (so the feature vector can be
//! labeled and used for training), that domain's label must be temporarily
//! hidden — and the hiding must cascade to machines: a machine labeled
//! malware *only because* it queried the hidden domain reverts to unknown,
//! and a machine labeled benign that queried the hidden (benign) domain also
//! reverts to unknown, because from its point of view it now queries an
//! unknown domain.
//!
//! [`HiddenLabelView`] computes these effective labels in O(1) per machine
//! using the precomputed per-machine malware degree, without rebuilding the
//! graph.

use segugio_model::Label;

use crate::graph::{BehaviorGraph, DomainIdx, MachineIdx};

/// A read-only view of a [`BehaviorGraph`] in which one domain's label (and
/// its consequences for machine labels) is hidden.
///
/// # Example
///
/// ```
/// use segugio_graph::{GraphBuilder, HiddenLabelView};
/// use segugio_graph::labeling::apply_seed_labels;
/// use segugio_model::{Day, DomainId, Label, MachineId};
///
/// let mut b = GraphBuilder::new(Day(0));
/// b.add_query(MachineId(1), DomainId(10)); // 10 is malware
/// b.add_query(MachineId(1), DomainId(11));
/// let mut g = b.build();
/// apply_seed_labels(&mut g, |d| d == DomainId(10), |_| false);
///
/// let d10 = g.domain_idx(DomainId(10)).unwrap();
/// let m1 = g.machine_idx(MachineId(1)).unwrap();
/// assert_eq!(g.machine_label(m1), Label::Malware);
///
/// let view = HiddenLabelView::new(&g, d10);
/// // With d10 hidden, machine 1 queries no known malware domain.
/// assert_eq!(view.machine_label(m1), Label::Unknown);
/// assert_eq!(view.domain_label(d10), Label::Unknown);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HiddenLabelView<'g> {
    graph: &'g BehaviorGraph,
    hidden: DomainIdx,
    hidden_original: Label,
}

impl<'g> HiddenLabelView<'g> {
    /// Creates a view hiding `domain`'s label.
    pub fn new(graph: &'g BehaviorGraph, domain: DomainIdx) -> Self {
        HiddenLabelView {
            graph,
            hidden: domain,
            hidden_original: graph.domain_label(domain),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g BehaviorGraph {
        self.graph
    }

    /// The domain whose label is hidden.
    pub fn hidden_domain(&self) -> DomainIdx {
        self.hidden
    }

    /// The hidden domain's true label (the training target).
    pub fn hidden_original_label(&self) -> Label {
        self.hidden_original
    }

    /// The effective label of `d` under hiding.
    pub fn domain_label(&self, d: DomainIdx) -> Label {
        if d == self.hidden {
            Label::Unknown
        } else {
            self.graph.domain_label(d)
        }
    }

    /// The effective label of `m` under hiding.
    ///
    /// A machine's label changes only if it queried the hidden domain:
    /// - machine was malware, hidden domain was its *only* known malware
    ///   domain → unknown;
    /// - machine was benign and the hidden (benign) domain is now unknown →
    ///   unknown;
    /// - otherwise unchanged.
    pub fn machine_label(&self, m: MachineIdx) -> Label {
        let original = self.graph.machine_label(m);
        if !self.queried_hidden(m) {
            return original;
        }
        match (original, self.hidden_original) {
            (Label::Malware, Label::Malware) => {
                if self.graph.machine_malware_degree(m) == 1 {
                    Label::Unknown
                } else {
                    Label::Malware
                }
            }
            (Label::Benign, _) => Label::Unknown,
            (label, _) => label,
        }
    }

    fn queried_hidden(&self, m: MachineIdx) -> bool {
        // Adjacency lists are sorted by internal domain index.
        let lo = self.graph.m_off[m.index()] as usize;
        let hi = self.graph.m_off[m.index() + 1] as usize;
        self.graph.m_adj[lo..hi]
            .binary_search(&self.hidden.0)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::labeling::apply_seed_labels;
    use segugio_model::{Day, DomainId, E2ldId, MachineId};

    /// Machines:
    /// - 1 queries malware {10} and benign {20}    (single infection)
    /// - 2 queries malware {10, 11} and benign {20} (double infection)
    /// - 3 queries benign {20} only
    /// - 4 queries benign {20} and unknown {30}
    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(1), DomainId(10));
        b.add_query(MachineId(1), DomainId(20));
        b.add_query(MachineId(2), DomainId(10));
        b.add_query(MachineId(2), DomainId(11));
        b.add_query(MachineId(2), DomainId(20));
        b.add_query(MachineId(3), DomainId(20));
        b.add_query(MachineId(4), DomainId(20));
        b.add_query(MachineId(4), DomainId(30));
        for d in [10u32, 11, 20, 30] {
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(
            &mut g,
            |d| d == DomainId(10) || d == DomainId(11),
            |e| e == E2ldId(20),
        );
        g
    }

    #[test]
    fn hiding_malware_domain_cascades_to_single_infection() {
        let g = sample();
        let view = HiddenLabelView::new(&g, g.domain_idx(DomainId(10)).unwrap());
        let m1 = g.machine_idx(MachineId(1)).unwrap();
        let m2 = g.machine_idx(MachineId(2)).unwrap();
        // Machine 1's only malware domain was hidden → unknown.
        assert_eq!(view.machine_label(m1), Label::Unknown);
        // Machine 2 still queries malware domain 11 → stays malware.
        assert_eq!(view.machine_label(m2), Label::Malware);
        assert_eq!(view.hidden_original_label(), Label::Malware);
    }

    #[test]
    fn hiding_benign_domain_cascades_to_benign_machines() {
        let g = sample();
        let view = HiddenLabelView::new(&g, g.domain_idx(DomainId(20)).unwrap());
        let m3 = g.machine_idx(MachineId(3)).unwrap();
        let m4 = g.machine_idx(MachineId(4)).unwrap();
        let m2 = g.machine_idx(MachineId(2)).unwrap();
        // Machine 3 queried only the hidden benign domain → unknown now.
        assert_eq!(view.machine_label(m3), Label::Unknown);
        // Machine 4 was already unknown → unchanged.
        assert_eq!(view.machine_label(m4), Label::Unknown);
        // Machine 2 is malware → unchanged by hiding a benign domain.
        assert_eq!(view.machine_label(m2), Label::Malware);
    }

    #[test]
    fn machines_not_querying_hidden_domain_are_unaffected() {
        let g = sample();
        let view = HiddenLabelView::new(&g, g.domain_idx(DomainId(30)).unwrap());
        for (m, expect) in [
            (MachineId(1), Label::Malware),
            (MachineId(2), Label::Malware),
            (MachineId(3), Label::Benign),
        ] {
            assert_eq!(view.machine_label(g.machine_idx(m).unwrap()), expect);
        }
    }

    #[test]
    fn hidden_domain_reads_unknown() {
        let g = sample();
        let d10 = g.domain_idx(DomainId(10)).unwrap();
        let d11 = g.domain_idx(DomainId(11)).unwrap();
        let view = HiddenLabelView::new(&g, d10);
        assert_eq!(view.domain_label(d10), Label::Unknown);
        assert_eq!(view.domain_label(d11), Label::Malware);
    }
}
