//! Incremental construction of a [`BehaviorGraph`].

use std::collections::HashMap;

use segugio_model::{Day, DomainId, E2ldId, Ipv4, Label, MachineId};

use crate::graph::BehaviorGraph;

/// Accumulates one day of `(machine, domain)` query observations plus the
/// per-domain annotations, then freezes them into a [`BehaviorGraph`].
///
/// Duplicate queries of the same pair are collapsed (the graph is a set of
/// edges, not a multigraph). Unannotated domains get an empty IP set and,
/// if no e2LD was registered, a sentinel e2LD equal to their own id — the
/// builder is forgiving so tests can construct minimal graphs.
///
/// # Example
///
/// ```
/// use segugio_graph::GraphBuilder;
/// use segugio_model::{Day, DomainId, MachineId};
///
/// let mut b = GraphBuilder::new(Day(5));
/// b.add_query(MachineId(1), DomainId(9));
/// b.add_query(MachineId(1), DomainId(9)); // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.day(), Day(5));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    day: Day,
    edges: Vec<(MachineId, DomainId)>,
    e2ld: HashMap<DomainId, E2ldId>,
    ips: HashMap<DomainId, Vec<Ipv4>>,
    parallelism: usize,
}

/// Below this many edges the scoped-thread fan-out costs more than it
/// saves; build serially. Parallel and serial paths produce identical
/// graphs, so the cutover is invisible to callers.
const PARALLEL_EDGE_THRESHOLD: usize = 2048;

impl GraphBuilder {
    /// Starts a builder for the given observation day.
    pub fn new(day: Day) -> Self {
        GraphBuilder {
            day,
            edges: Vec::new(),
            e2ld: HashMap::new(),
            ips: HashMap::new(),
            parallelism: 1,
        }
    }

    /// Sets the worker-thread count for [`build`](Self::build) (clamped to
    /// at least 1; the default is 1). The built graph is bit-for-bit
    /// identical at every setting.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Records that `machine` queried `domain`.
    pub fn add_query(&mut self, machine: MachineId, domain: DomainId) {
        self.edges.push((machine, domain));
    }

    /// Records several queries at once.
    pub fn add_queries<I: IntoIterator<Item = (MachineId, DomainId)>>(&mut self, queries: I) {
        self.edges.extend(queries);
    }

    /// Annotates `domain` with its e2LD id.
    pub fn set_e2ld(&mut self, domain: DomainId, e2ld: E2ldId) {
        self.e2ld.insert(domain, e2ld);
    }

    /// Adds a resolved IP to `domain`'s annotation.
    pub fn add_resolution(&mut self, domain: DomainId, ip: Ipv4) {
        self.ips.entry(domain).or_default().push(ip);
    }

    /// Number of recorded (possibly duplicate) query observations.
    pub fn query_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable graph. All labels start as
    /// [`Label::Unknown`].
    pub fn build(mut self) -> BehaviorGraph {
        // Dedup edges.
        self.edges.sort_unstable();
        self.edges.dedup();

        // Dense machine / domain index assignment (sorted by external id so
        // binary-search lookup works).
        let mut machines: Vec<MachineId> = self.edges.iter().map(|&(m, _)| m).collect();
        machines.sort_unstable();
        machines.dedup();
        let mut domains: Vec<DomainId> = self.edges.iter().map(|&(_, d)| d).collect();
        domains.sort_unstable();
        domains.dedup();

        let m_index: HashMap<MachineId, u32> = machines
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
        let d_index: HashMap<DomainId, u32> = domains
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();

        let threads = if self.edges.len() >= PARALLEL_EDGE_THRESHOLD {
            self.parallelism
        } else {
            1
        };

        // Machine -> domain CSR. Edges are sorted by (machine, domain) and
        // machines/domains are sorted, so the machine adjacency is exactly
        // the edge list's domain column in edge order — each worker fills a
        // disjoint slice of it.
        let mut m_off = vec![0u32; machines.len() + 1];
        for &(m, _) in &self.edges {
            m_off[m_index[&m] as usize + 1] += 1;
        }
        for i in 1..m_off.len() {
            m_off[i] += m_off[i - 1];
        }
        let mut m_adj = vec![0u32; self.edges.len()];
        if threads <= 1 {
            for (slot, &(_, d)) in m_adj.iter_mut().zip(&self.edges) {
                *slot = d_index[&d];
            }
        } else {
            let chunk = self.edges.len().div_ceil(threads);
            let joined = crossbeam::thread::scope(|scope| {
                for (out, es) in m_adj.chunks_mut(chunk).zip(self.edges.chunks(chunk)) {
                    let d_index = &d_index;
                    scope.spawn(move |_| {
                        for (slot, &(_, d)) in out.iter_mut().zip(es) {
                            *slot = d_index[&d];
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
        }

        // Domain -> machine CSR.
        let mut d_off = vec![0u32; domains.len() + 1];
        for &(_, d) in &self.edges {
            d_off[d_index[&d] as usize + 1] += 1;
        }
        for i in 1..d_off.len() {
            d_off[i] += d_off[i - 1];
        }
        let mut d_adj = vec![0u32; self.edges.len()];
        if threads <= 1 {
            let mut cursor = d_off.clone();
            for &(m, d) in &self.edges {
                let di = d_index[&d] as usize;
                d_adj[cursor[di] as usize] = m_index[&m];
                cursor[di] += 1;
            }
            // Sort each domain's machine list for determinism.
            for di in 0..domains.len() {
                let lo = d_off[di] as usize;
                let hi = d_off[di + 1] as usize;
                d_adj[lo..hi].sort_unstable();
            }
        } else {
            // Scatter with per-domain atomic cursors: workers claim slots in
            // whatever order they run, then each domain's list is sorted, so
            // the result equals the serial scatter+sort exactly (machine
            // indices within a domain are unique after edge dedup).
            use std::sync::atomic::{AtomicU32, Ordering};
            let cursors: Vec<AtomicU32> = d_off[..domains.len()]
                .iter()
                .map(|&o| AtomicU32::new(o))
                .collect();
            let slots: Vec<AtomicU32> = (0..self.edges.len()).map(|_| AtomicU32::new(0)).collect();
            let chunk = self.edges.len().div_ceil(threads);
            let joined = crossbeam::thread::scope(|scope| {
                for es in self.edges.chunks(chunk) {
                    let (cursors, slots) = (&cursors, &slots);
                    let (m_index, d_index) = (&m_index, &d_index);
                    scope.spawn(move |_| {
                        for &(m, d) in es {
                            let di = d_index[&d] as usize;
                            // segugio-lint: allow(P1, slot claims are disjoint and the per-domain sort below erases claim order; the scope join publishes the stores)
                            let pos = cursors[di].fetch_add(1, Ordering::Relaxed);
                            // segugio-lint: allow(P1, each slot index is claimed exactly once, so the store races with nothing)
                            slots[pos as usize].store(m_index[&m], Ordering::Relaxed);
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
            for (slot, filled) in d_adj.iter_mut().zip(&slots) {
                *slot = filled.load(Ordering::Relaxed);
            }

            // Per-domain sort, parallelized over contiguous domain ranges of
            // roughly equal edge mass; each range is a disjoint slice.
            let target = self.edges.len().div_ceil(threads);
            let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(threads);
            let mut start = 0usize;
            while start < domains.len() {
                let mut end = start;
                while end < domains.len() && (d_off[end + 1] - d_off[start]) as usize <= target {
                    end += 1;
                }
                // A single domain heavier than the target gets its own range.
                let end = end.max(start + 1);
                ranges.push((start, end));
                start = end;
            }
            let joined = crossbeam::thread::scope(|scope| {
                let mut remaining = &mut d_adj[..];
                let mut consumed = 0usize;
                for &(s, e) in &ranges {
                    let hi = d_off[e] as usize;
                    let (head, rest) = std::mem::take(&mut remaining).split_at_mut(hi - consumed);
                    remaining = rest;
                    let base = consumed;
                    consumed = hi;
                    let d_off = &d_off;
                    scope.spawn(move |_| {
                        for di in s..e {
                            let lo = d_off[di] as usize - base;
                            let hi = d_off[di + 1] as usize - base;
                            head[lo..hi].sort_unstable();
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
        }

        let domain_e2ld: Vec<E2ldId> = domains
            .iter()
            .map(|d| self.e2ld.get(d).copied().unwrap_or(E2ldId(d.0)))
            .collect();
        // Flat IP annotation pool: per-domain sorted deduped segments,
        // delimited by `ip_off` (one backing allocation instead of one
        // boxed slice per domain).
        let mut ip_off: Vec<u32> = Vec::with_capacity(domains.len() + 1);
        ip_off.push(0);
        let mut ip_pool: Vec<Ipv4> = Vec::new();
        for d in &domains {
            if let Some(mut ips) = self.ips.remove(d) {
                ips.sort_unstable();
                ips.dedup();
                ip_pool.extend_from_slice(&ips);
            }
            ip_off.push(ip_pool.len() as u32);
        }

        let n_m = machines.len();
        let n_d = domains.len();
        let graph = BehaviorGraph {
            day: self.day,
            machines,
            domains,
            domain_e2ld,
            ip_off,
            ip_pool,
            m_off,
            m_adj,
            d_off,
            d_adj,
            domain_labels: vec![Label::Unknown; n_d],
            machine_labels: vec![Label::Unknown; n_m],
            machine_malware_degree: vec![0; n_m],
        };
        // Every structural invariant is checked on debug builds (tests,
        // proptests); release builds skip the O(edges) pass.
        #[cfg(debug_assertions)]
        if let Err(violation) = graph.validate() {
            unreachable!("builder produced an invalid graph: {violation}");
        }
        graph
    }

    /// Builds a graph by streaming the merged edge runs twice — a
    /// counting-sort CSR construction for paper-scale days.
    ///
    /// Where [`build`](Self::build) sorts one giant edge `Vec` and keys two
    /// `HashMap`s for index assignment, this path replays the
    /// already-sorted [`EdgeRuns`] stream: pass one counts per-raw-id
    /// degrees (dense index assignment and both offset arrays fall out of a
    /// prefix sum), pass two scatters both adjacency arrays directly —
    /// per-node lists arrive ascending by construction, so no sort and no
    /// hash lookups happen at all. Peak memory is the output CSR plus two
    /// `max_raw_id`-sized counting arrays, never the full edge list.
    ///
    /// `e2ld_of` must return the annotation for every queried domain —
    /// including the [sentinel](GraphBuilder) `E2ldId(d.0)` for domains the
    /// equivalent in-memory builder would leave unannotated — and
    /// `resolutions` the same `(domain, ips)` pairs that would have gone
    /// through [`add_resolution`](Self::add_resolution). Under that
    /// contract the output is bit-for-bit identical to [`build`](Self::build)
    /// on the same observations (pinned by the crate's parity proptests).
    ///
    /// Errors surface only from replaying spilled runs; the accumulator is
    /// untouched, so callers with the edge list still in memory can fall
    /// back to the in-memory builder.
    pub fn from_runs<F>(
        day: Day,
        runs: &crate::EdgeRuns,
        resolutions: &[(DomainId, Vec<Ipv4>)],
        e2ld_of: F,
    ) -> std::io::Result<BehaviorGraph>
    where
        F: Fn(DomainId) -> E2ldId,
    {
        let Some((max_m, max_d)) = runs.max_ids() else {
            return Ok(GraphBuilder::new(day).build());
        };

        // Pass 1: per-raw-id degrees over the merged deduplicated stream.
        let mut m_deg = vec![0u32; max_m as usize + 1];
        let mut d_deg = vec![0u32; max_d as usize + 1];
        let mut edges = 0usize;
        runs.for_each_merged(|m, d| {
            m_deg[m.0 as usize] += 1;
            d_deg[d.0 as usize] += 1;
            edges += 1;
        })?;

        // Dense index assignment in ascending raw-id order (exactly the
        // sorted order the in-memory builder produces) and CSR offsets by
        // prefix sum over the counted degrees.
        let mut machines: Vec<MachineId> = Vec::new();
        let mut m_off: Vec<u32> = Vec::new();
        m_off.push(0);
        let mut m_total = 0u32;
        for (raw, &deg) in m_deg.iter().enumerate() {
            if deg > 0 {
                machines.push(MachineId(raw as u32));
                m_total += deg;
                m_off.push(m_total);
            }
        }
        // The domain degree array is reused as raw-id -> dense-rank map.
        let mut domains: Vec<DomainId> = Vec::new();
        let mut d_off: Vec<u32> = Vec::new();
        d_off.push(0);
        let mut d_rank = d_deg;
        let mut d_total = 0u32;
        for (raw, slot) in d_rank.iter_mut().enumerate() {
            let deg = *slot;
            if deg > 0 {
                *slot = domains.len() as u32;
                domains.push(DomainId(raw as u32));
                d_total += deg;
                d_off.push(d_total);
            } else {
                *slot = u32::MAX;
            }
        }

        // Pass 2: scatter both adjacency arrays. The stream ascends by
        // (machine, domain), so the machine adjacency is filled in place
        // ascending, and every domain's machine list receives ascending
        // ranks — no per-node sort needed.
        let mut m_adj = vec![0u32; edges];
        let mut d_adj = vec![0u32; edges];
        let mut cursor: Vec<u32> = Vec::with_capacity(domains.len());
        cursor.extend_from_slice(&d_off[..domains.len()]);
        let mut pos = 0usize;
        let mut m_rank = 0usize;
        runs.for_each_merged(|m, d| {
            while machines[m_rank] != m {
                m_rank += 1;
            }
            let dr = d_rank[d.0 as usize] as usize;
            m_adj[pos] = dr as u32;
            pos += 1;
            d_adj[cursor[dr] as usize] = m_rank as u32;
            cursor[dr] += 1;
        })?;

        // Annotations, identical to the in-memory builder's sort+dedup.
        let domain_e2ld: Vec<E2ldId> = domains.iter().map(|&d| e2ld_of(d)).collect();
        let mut pairs: Vec<(DomainId, Ipv4)> = Vec::new();
        for (d, ips) in resolutions {
            // segugio-lint: allow(D1, ips is a Vec from the resolutions slice — deterministic order, and pairs are sorted below anyway)
            for &ip in ips {
                pairs.push((*d, ip));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut ip_off: Vec<u32> = Vec::with_capacity(domains.len() + 1);
        ip_off.push(0);
        let mut ip_pool: Vec<Ipv4> = Vec::with_capacity(pairs.len());
        let mut pc = 0usize;
        for &d in &domains {
            while pc < pairs.len() && pairs[pc].0 < d {
                pc += 1;
            }
            while pc < pairs.len() && pairs[pc].0 == d {
                ip_pool.push(pairs[pc].1);
                pc += 1;
            }
            ip_off.push(ip_pool.len() as u32);
        }

        let n_m = machines.len();
        let n_d = domains.len();
        let graph = BehaviorGraph {
            day,
            machines,
            domains,
            domain_e2ld,
            ip_off,
            ip_pool,
            m_off,
            m_adj,
            d_off,
            d_adj,
            domain_labels: vec![Label::Unknown; n_d],
            machine_labels: vec![Label::Unknown; n_m],
            machine_malware_degree: vec![0; n_m],
        };
        #[cfg(debug_assertions)]
        if let Err(violation) = graph.validate() {
            unreachable!("streamed builder produced an invalid graph: {violation}");
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(Day(0)).build();
        assert_eq!(g.machine_count(), 0);
        assert_eq!(g.domain_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(Day(0));
        for _ in 0..5 {
            b.add_query(MachineId(1), DomainId(2));
        }
        assert_eq!(b.query_count(), 5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn annotations_dedup_and_default() {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(1), DomainId(2));
        b.add_query(MachineId(1), DomainId(3));
        let ip = Ipv4::from_octets(1, 2, 3, 4);
        b.add_resolution(DomainId(2), ip);
        b.add_resolution(DomainId(2), ip);
        b.set_e2ld(DomainId(2), E2ldId(77));
        let g = b.build();
        let d2 = g.domain_idx(DomainId(2)).unwrap();
        let d3 = g.domain_idx(DomainId(3)).unwrap();
        assert_eq!(g.domain_ips(d2), &[ip]);
        assert!(g.domain_ips(d3).is_empty());
        assert_eq!(g.domain_e2ld(d2), E2ldId(77));
        // Sentinel e2LD for unannotated domain.
        assert_eq!(g.domain_e2ld(d3), E2ldId(3));
    }

    /// Every stored field must match — the from_runs parity contract is
    /// bit-for-bit, not just observational.
    fn assert_identical(a: &BehaviorGraph, b: &BehaviorGraph) {
        assert_eq!(a.day, b.day);
        assert_eq!(a.machines, b.machines);
        assert_eq!(a.domains, b.domains);
        assert_eq!(a.domain_e2ld, b.domain_e2ld);
        assert_eq!(a.ip_off, b.ip_off);
        assert_eq!(a.ip_pool, b.ip_pool);
        assert_eq!(a.m_off, b.m_off);
        assert_eq!(a.m_adj, b.m_adj);
        assert_eq!(a.d_off, b.d_off);
        assert_eq!(a.d_adj, b.d_adj);
        assert_eq!(a.domain_labels, b.domain_labels);
        assert_eq!(a.machine_labels, b.machine_labels);
        assert_eq!(a.machine_malware_degree, b.machine_malware_degree);
    }

    /// Builds the same observations through the in-memory builder and the
    /// streamed run path (at `run_capacity`, tiny values forcing spill)
    /// and checks bit-for-bit identity plus structural validity.
    fn check_from_runs_parity(
        queries: &[(MachineId, DomainId)],
        resolutions: &[(DomainId, Vec<Ipv4>)],
        e2ld: &[(DomainId, E2ldId)],
        run_capacity: usize,
    ) {
        let mut b = GraphBuilder::new(Day(3));
        b.add_queries(queries.iter().copied());
        for (d, ips) in resolutions {
            for &ip in ips {
                b.add_resolution(*d, ip);
            }
        }
        for &(d, e) in e2ld {
            b.set_e2ld(d, e);
        }
        let reference = b.build();

        let mut runs = crate::EdgeRuns::with_run_capacity(run_capacity);
        runs.extend(queries.iter().copied());
        // Last entry wins, mirroring repeated `set_e2ld` overwrites.
        let streamed = GraphBuilder::from_runs(Day(3), &runs, resolutions, |d| {
            e2ld.iter()
                .rev()
                .find(|&&(dd, _)| dd == d)
                .map(|&(_, e)| e)
                .unwrap_or(E2ldId(d.0))
        })
        .expect("in-memory or spilled replay must succeed");
        streamed.validate().expect("streamed graph must validate");
        assert_identical(&reference, &streamed);
    }

    #[test]
    fn from_runs_matches_build_on_handwritten_day() {
        let ip = |a: u8| Ipv4::from_octets(10, 0, 0, a);
        let queries = [
            (MachineId(7), DomainId(2)),
            (MachineId(1), DomainId(9)),
            (MachineId(7), DomainId(2)), // duplicate
            (MachineId(1), DomainId(2)),
            (MachineId(3), DomainId(40)),
            (MachineId(7), DomainId(9)),
        ];
        let resolutions = vec![
            (DomainId(2), vec![ip(4), ip(1), ip(4)]),
            (DomainId(9), vec![ip(9)]),
            (DomainId(77), vec![ip(5)]), // never queried: dropped by both
        ];
        let e2ld = [(DomainId(2), E2ldId(100)), (DomainId(9), E2ldId(100))];
        // Capacity 2 forces several sealed (spilled) runs; a huge capacity
        // exercises the single-open-run path.
        for cap in [2, 1 << 20] {
            check_from_runs_parity(&queries, &resolutions, &e2ld, cap);
        }
    }

    #[test]
    fn from_runs_empty_is_empty() {
        let runs = crate::EdgeRuns::new();
        let g = GraphBuilder::from_runs(Day(8), &runs, &[], |d| E2ldId(d.0)).expect("empty");
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.day(), Day(8));
        g.validate().expect("empty graph validates");
    }

    use proptest::prelude::*;

    proptest! {
        /// Random edge sets, annotations and run capacities (1..8 forces
        /// heavy spilling): the streamed counting-sort path must be
        /// bit-for-bit identical to the in-memory builder and always
        /// structurally valid.
        #[test]
        #[cfg_attr(miri, ignore = "spill-file proptest volume is too slow under Miri")]
        fn from_runs_always_matches_build(
            queries in proptest::collection::vec((0u32..24, 0u32..32), 0..200),
            resolved in proptest::collection::vec((0u32..40, proptest::collection::vec(0u32..50, 0..4)), 0..12),
            e2lds in proptest::collection::vec((0u32..32, 0u32..6), 0..10),
            run_capacity in 1usize..8,
        ) {
            let queries: Vec<(MachineId, DomainId)> = queries
                .into_iter()
                .map(|(m, d)| (MachineId(m), DomainId(d)))
                .collect();
            let resolutions: Vec<(DomainId, Vec<Ipv4>)> = resolved
                .into_iter()
                .map(|(d, ips)| (DomainId(d), ips.into_iter().map(Ipv4).collect()))
                .collect();
            let e2ld: Vec<(DomainId, E2ldId)> = e2lds
                .into_iter()
                .map(|(d, e)| (DomainId(d), E2ldId(e)))
                .collect();
            check_from_runs_parity(&queries, &resolutions, &e2ld, run_capacity);
        }
    }
}
