//! Incremental construction of a [`BehaviorGraph`].

use std::collections::HashMap;

use segugio_model::{Day, DomainId, E2ldId, Ipv4, Label, MachineId};

use crate::graph::BehaviorGraph;

/// Accumulates one day of `(machine, domain)` query observations plus the
/// per-domain annotations, then freezes them into a [`BehaviorGraph`].
///
/// Duplicate queries of the same pair are collapsed (the graph is a set of
/// edges, not a multigraph). Unannotated domains get an empty IP set and,
/// if no e2LD was registered, a sentinel e2LD equal to their own id — the
/// builder is forgiving so tests can construct minimal graphs.
///
/// # Example
///
/// ```
/// use segugio_graph::GraphBuilder;
/// use segugio_model::{Day, DomainId, MachineId};
///
/// let mut b = GraphBuilder::new(Day(5));
/// b.add_query(MachineId(1), DomainId(9));
/// b.add_query(MachineId(1), DomainId(9)); // duplicate, collapsed
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.day(), Day(5));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    day: Day,
    edges: Vec<(MachineId, DomainId)>,
    e2ld: HashMap<DomainId, E2ldId>,
    ips: HashMap<DomainId, Vec<Ipv4>>,
    parallelism: usize,
}

/// Below this many edges the scoped-thread fan-out costs more than it
/// saves; build serially. Parallel and serial paths produce identical
/// graphs, so the cutover is invisible to callers.
const PARALLEL_EDGE_THRESHOLD: usize = 2048;

impl GraphBuilder {
    /// Starts a builder for the given observation day.
    pub fn new(day: Day) -> Self {
        GraphBuilder {
            day,
            edges: Vec::new(),
            e2ld: HashMap::new(),
            ips: HashMap::new(),
            parallelism: 1,
        }
    }

    /// Sets the worker-thread count for [`build`](Self::build) (clamped to
    /// at least 1; the default is 1). The built graph is bit-for-bit
    /// identical at every setting.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// Records that `machine` queried `domain`.
    pub fn add_query(&mut self, machine: MachineId, domain: DomainId) {
        self.edges.push((machine, domain));
    }

    /// Records several queries at once.
    pub fn add_queries<I: IntoIterator<Item = (MachineId, DomainId)>>(&mut self, queries: I) {
        self.edges.extend(queries);
    }

    /// Annotates `domain` with its e2LD id.
    pub fn set_e2ld(&mut self, domain: DomainId, e2ld: E2ldId) {
        self.e2ld.insert(domain, e2ld);
    }

    /// Adds a resolved IP to `domain`'s annotation.
    pub fn add_resolution(&mut self, domain: DomainId, ip: Ipv4) {
        self.ips.entry(domain).or_default().push(ip);
    }

    /// Number of recorded (possibly duplicate) query observations.
    pub fn query_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable graph. All labels start as
    /// [`Label::Unknown`].
    pub fn build(mut self) -> BehaviorGraph {
        // Dedup edges.
        self.edges.sort_unstable();
        self.edges.dedup();

        // Dense machine / domain index assignment (sorted by external id so
        // binary-search lookup works).
        let mut machines: Vec<MachineId> = self.edges.iter().map(|&(m, _)| m).collect();
        machines.sort_unstable();
        machines.dedup();
        let mut domains: Vec<DomainId> = self.edges.iter().map(|&(_, d)| d).collect();
        domains.sort_unstable();
        domains.dedup();

        let m_index: HashMap<MachineId, u32> = machines
            .iter()
            .enumerate()
            .map(|(i, &m)| (m, i as u32))
            .collect();
        let d_index: HashMap<DomainId, u32> = domains
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u32))
            .collect();

        let threads = if self.edges.len() >= PARALLEL_EDGE_THRESHOLD {
            self.parallelism
        } else {
            1
        };

        // Machine -> domain CSR. Edges are sorted by (machine, domain) and
        // machines/domains are sorted, so the machine adjacency is exactly
        // the edge list's domain column in edge order — each worker fills a
        // disjoint slice of it.
        let mut m_off = vec![0u32; machines.len() + 1];
        for &(m, _) in &self.edges {
            m_off[m_index[&m] as usize + 1] += 1;
        }
        for i in 1..m_off.len() {
            m_off[i] += m_off[i - 1];
        }
        let mut m_adj = vec![0u32; self.edges.len()];
        if threads <= 1 {
            for (slot, &(_, d)) in m_adj.iter_mut().zip(&self.edges) {
                *slot = d_index[&d];
            }
        } else {
            let chunk = self.edges.len().div_ceil(threads);
            let joined = crossbeam::thread::scope(|scope| {
                for (out, es) in m_adj.chunks_mut(chunk).zip(self.edges.chunks(chunk)) {
                    let d_index = &d_index;
                    scope.spawn(move |_| {
                        for (slot, &(_, d)) in out.iter_mut().zip(es) {
                            *slot = d_index[&d];
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
        }

        // Domain -> machine CSR.
        let mut d_off = vec![0u32; domains.len() + 1];
        for &(_, d) in &self.edges {
            d_off[d_index[&d] as usize + 1] += 1;
        }
        for i in 1..d_off.len() {
            d_off[i] += d_off[i - 1];
        }
        let mut d_adj = vec![0u32; self.edges.len()];
        if threads <= 1 {
            let mut cursor = d_off.clone();
            for &(m, d) in &self.edges {
                let di = d_index[&d] as usize;
                d_adj[cursor[di] as usize] = m_index[&m];
                cursor[di] += 1;
            }
            // Sort each domain's machine list for determinism.
            for di in 0..domains.len() {
                let lo = d_off[di] as usize;
                let hi = d_off[di + 1] as usize;
                d_adj[lo..hi].sort_unstable();
            }
        } else {
            // Scatter with per-domain atomic cursors: workers claim slots in
            // whatever order they run, then each domain's list is sorted, so
            // the result equals the serial scatter+sort exactly (machine
            // indices within a domain are unique after edge dedup).
            use std::sync::atomic::{AtomicU32, Ordering};
            let cursors: Vec<AtomicU32> = d_off[..domains.len()]
                .iter()
                .map(|&o| AtomicU32::new(o))
                .collect();
            let slots: Vec<AtomicU32> = (0..self.edges.len()).map(|_| AtomicU32::new(0)).collect();
            let chunk = self.edges.len().div_ceil(threads);
            let joined = crossbeam::thread::scope(|scope| {
                for es in self.edges.chunks(chunk) {
                    let (cursors, slots) = (&cursors, &slots);
                    let (m_index, d_index) = (&m_index, &d_index);
                    scope.spawn(move |_| {
                        for &(m, d) in es {
                            let di = d_index[&d] as usize;
                            // segugio-lint: allow(P1, slot claims are disjoint and the per-domain sort below erases claim order; the scope join publishes the stores)
                            let pos = cursors[di].fetch_add(1, Ordering::Relaxed);
                            // segugio-lint: allow(P1, each slot index is claimed exactly once, so the store races with nothing)
                            slots[pos as usize].store(m_index[&m], Ordering::Relaxed);
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
            for (slot, filled) in d_adj.iter_mut().zip(&slots) {
                *slot = filled.load(Ordering::Relaxed);
            }

            // Per-domain sort, parallelized over contiguous domain ranges of
            // roughly equal edge mass; each range is a disjoint slice.
            let target = self.edges.len().div_ceil(threads);
            let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(threads);
            let mut start = 0usize;
            while start < domains.len() {
                let mut end = start;
                while end < domains.len() && (d_off[end + 1] - d_off[start]) as usize <= target {
                    end += 1;
                }
                // A single domain heavier than the target gets its own range.
                let end = end.max(start + 1);
                ranges.push((start, end));
                start = end;
            }
            let joined = crossbeam::thread::scope(|scope| {
                let mut remaining = &mut d_adj[..];
                let mut consumed = 0usize;
                for &(s, e) in &ranges {
                    let hi = d_off[e] as usize;
                    let (head, rest) = std::mem::take(&mut remaining).split_at_mut(hi - consumed);
                    remaining = rest;
                    let base = consumed;
                    consumed = hi;
                    let d_off = &d_off;
                    scope.spawn(move |_| {
                        for di in s..e {
                            let lo = d_off[di] as usize - base;
                            let hi = d_off[di + 1] as usize - base;
                            head[lo..hi].sort_unstable();
                        }
                    });
                }
            });
            if let Err(payload) = joined {
                std::panic::resume_unwind(payload);
            }
        }

        let domain_e2ld: Vec<E2ldId> = domains
            .iter()
            .map(|d| self.e2ld.get(d).copied().unwrap_or(E2ldId(d.0)))
            .collect();
        let domain_ips: Vec<Box<[Ipv4]>> = domains
            .iter()
            .map(|d| {
                let mut ips = self.ips.remove(d).unwrap_or_default();
                ips.sort_unstable();
                ips.dedup();
                ips.into_boxed_slice()
            })
            .collect();

        let n_m = machines.len();
        let n_d = domains.len();
        let graph = BehaviorGraph {
            day: self.day,
            machines,
            domains,
            domain_e2ld,
            domain_ips,
            m_off,
            m_adj,
            d_off,
            d_adj,
            domain_labels: vec![Label::Unknown; n_d],
            machine_labels: vec![Label::Unknown; n_m],
            machine_malware_degree: vec![0; n_m],
        };
        // Every structural invariant is checked on debug builds (tests,
        // proptests); release builds skip the O(edges) pass.
        #[cfg(debug_assertions)]
        if let Err(violation) = graph.validate() {
            unreachable!("builder produced an invalid graph: {violation}");
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(Day(0)).build();
        assert_eq!(g.machine_count(), 0);
        assert_eq!(g.domain_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new(Day(0));
        for _ in 0..5 {
            b.add_query(MachineId(1), DomainId(2));
        }
        assert_eq!(b.query_count(), 5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn annotations_dedup_and_default() {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(1), DomainId(2));
        b.add_query(MachineId(1), DomainId(3));
        let ip = Ipv4::from_octets(1, 2, 3, 4);
        b.add_resolution(DomainId(2), ip);
        b.add_resolution(DomainId(2), ip);
        b.set_e2ld(DomainId(2), E2ldId(77));
        let g = b.build();
        let d2 = g.domain_idx(DomainId(2)).unwrap();
        let d3 = g.domain_idx(DomainId(3)).unwrap();
        assert_eq!(g.domain_ips(d2), &[ip]);
        assert!(g.domain_ips(d3).is_empty());
        assert_eq!(g.domain_e2ld(d2), E2ldId(77));
        // Sentinel e2LD for unannotated domain.
        assert_eq!(g.domain_e2ld(d3), E2ldId(3));
    }
}
