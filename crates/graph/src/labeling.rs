//! Seed-label application and machine-label propagation.
//!
//! Domains are labeled *malware* when their full FQD matches the C&C
//! blacklist, *benign* when their e2LD matches the popularity whitelist,
//! else *unknown*. Machine labels are then derived (paper Section II-A1):
//! a machine that queries any malware domain is *malware* (infected); a
//! machine that queries exclusively benign domains is *benign*; everything
//! else is *unknown*.

use segugio_model::{DomainId, E2ldId, Label};

use crate::graph::BehaviorGraph;

/// Applies seed labels from membership predicates and propagates machine
/// labels.
///
/// `in_blacklist` is consulted with the external [`DomainId`] of each domain
/// node; `in_whitelist` with its e2LD. Blacklist wins over whitelist (a
/// blacklisted FQD under a whitelisted e2LD is malware — this is exactly the
/// "abused free-hosting subdomain" case from Section IV-D).
pub fn apply_seed_labels<B, W>(graph: &mut BehaviorGraph, in_blacklist: B, in_whitelist: W)
where
    B: Fn(DomainId) -> bool,
    W: Fn(E2ldId) -> bool,
{
    apply_labels_with(graph, |id, e2ld| {
        if in_blacklist(id) {
            Label::Malware
        } else if in_whitelist(e2ld) {
            Label::Benign
        } else {
            Label::Unknown
        }
    });
}

/// Applies an arbitrary domain-labeling function and propagates machine
/// labels.
///
/// This is the generalized entry point used by the evaluation protocol: to
/// hide the ground truth of a *test* set, the labeling function returns
/// [`Label::Unknown`] for test domains even when the blacklist or whitelist
/// would label them — which automatically also relabels the machines whose
/// status depended on those domains, exactly as the paper's Section IV-A
/// prescribes.
pub fn apply_labels_with<F>(graph: &mut BehaviorGraph, label_of: F)
where
    F: Fn(DomainId, E2ldId) -> Label,
{
    for i in 0..graph.domains.len() {
        graph.domain_labels[i] = label_of(graph.domains[i], graph.domain_e2ld[i]);
    }
    propagate_machine_labels(graph);
}

/// Recomputes all machine labels and malware degrees from the current
/// domain labels.
pub fn propagate_machine_labels(graph: &mut BehaviorGraph) {
    for mi in 0..graph.machines.len() {
        let lo = graph.m_off[mi] as usize;
        let hi = graph.m_off[mi + 1] as usize;
        let mut malware_degree = 0u32;
        let mut all_benign = true;
        for &di in &graph.m_adj[lo..hi] {
            match graph.domain_labels[di as usize] {
                Label::Malware => {
                    malware_degree += 1;
                    all_benign = false;
                }
                Label::Unknown => all_benign = false,
                Label::Benign => {}
            }
        }
        graph.machine_malware_degree[mi] = malware_degree;
        graph.machine_labels[mi] = if malware_degree > 0 {
            Label::Malware
        } else if all_benign && lo != hi {
            Label::Benign
        } else {
            Label::Unknown
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use segugio_model::{Day, MachineId};

    /// Machines: 1 queries {10 mal, 20 wl}; 2 queries {20 wl}; 3 queries
    /// {20 wl, 30 unknown}.
    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(1), DomainId(10));
        b.add_query(MachineId(1), DomainId(20));
        b.add_query(MachineId(2), DomainId(20));
        b.add_query(MachineId(3), DomainId(20));
        b.add_query(MachineId(3), DomainId(30));
        b.set_e2ld(DomainId(10), E2ldId(10));
        b.set_e2ld(DomainId(20), E2ldId(20));
        b.set_e2ld(DomainId(30), E2ldId(30));
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d == DomainId(10), |e| e == E2ldId(20));
        g
    }

    #[test]
    fn domain_labels() {
        let g = sample();
        assert_eq!(
            g.domain_label(g.domain_idx(DomainId(10)).unwrap()),
            Label::Malware
        );
        assert_eq!(
            g.domain_label(g.domain_idx(DomainId(20)).unwrap()),
            Label::Benign
        );
        assert_eq!(
            g.domain_label(g.domain_idx(DomainId(30)).unwrap()),
            Label::Unknown
        );
        assert_eq!(g.domain_label_counts(), (1, 1, 1));
    }

    #[test]
    fn machine_labels_propagate() {
        let g = sample();
        assert_eq!(
            g.machine_label(g.machine_idx(MachineId(1)).unwrap()),
            Label::Malware
        );
        assert_eq!(
            g.machine_label(g.machine_idx(MachineId(2)).unwrap()),
            Label::Benign
        );
        assert_eq!(
            g.machine_label(g.machine_idx(MachineId(3)).unwrap()),
            Label::Unknown
        );
        assert_eq!(g.machine_label_counts(), (1, 1, 1));
    }

    #[test]
    fn malware_degree_counts() {
        let g = sample();
        assert_eq!(
            g.machine_malware_degree(g.machine_idx(MachineId(1)).unwrap()),
            1
        );
        assert_eq!(
            g.machine_malware_degree(g.machine_idx(MachineId(2)).unwrap()),
            0
        );
    }

    #[test]
    fn blacklist_beats_whitelist() {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(1), DomainId(10));
        b.set_e2ld(DomainId(10), E2ldId(20));
        let mut g = b.build();
        // Domain 10 is blacklisted AND its e2LD is whitelisted.
        apply_seed_labels(&mut g, |d| d == DomainId(10), |e| e == E2ldId(20));
        assert_eq!(
            g.domain_label(g.domain_idx(DomainId(10)).unwrap()),
            Label::Malware
        );
    }
}
