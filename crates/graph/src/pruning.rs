//! Conservative graph pruning (paper Section II-A2, rules R1–R4).
//!
//! - **R1** — drop "inactive" machines that query ≤ `min_machine_degree`
//!   domains, *except* machines already labeled malware (they may query a
//!   tiny set of control domains and still help detection).
//! - **R2** — drop proxy/forwarder machines whose degree is at or above the
//!   `proxy_percentile` of the machine-degree distribution (θ_d).
//! - **R3** — drop domains queried by only one machine, *except* known
//!   malware domains.
//! - **R4** — drop domains whose e2LD is queried by at least
//!   `popular_fraction` of all machines in the network (θ_m): such
//!   very-popular domains are overwhelmingly unlikely to be malware-control.

use segugio_model::{Ipv4, Label, MachineId};

use crate::graph::BehaviorGraph;
use crate::labeling;

/// Tunable thresholds for [`BehaviorGraph::prune`].
#[derive(Debug, Clone, PartialEq)]
pub struct PruneConfig {
    /// R1: machines with degree ≤ this are dropped (paper: 5).
    pub min_machine_degree: usize,
    /// R2: percentile (in `[0,1]`) of the degree distribution above which
    /// machines are treated as proxies (paper: 0.9999).
    pub proxy_percentile: f64,
    /// R4: fraction (in `[0,1]`) of all machines above which an e2LD is "too
    /// popular" (paper: 1/3).
    pub popular_fraction: f64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            min_machine_degree: 5,
            proxy_percentile: 0.9999,
            popular_fraction: 1.0 / 3.0,
        }
    }
}

/// What pruning removed, and the thresholds it derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Node/edge counts before pruning.
    pub machines_before: usize,
    /// Domain count before pruning.
    pub domains_before: usize,
    /// Edge count before pruning.
    pub edges_before: usize,
    /// Node/edge counts after pruning.
    pub machines_after: usize,
    /// Domain count after pruning.
    pub domains_after: usize,
    /// Edge count after pruning.
    pub edges_after: usize,
    /// Machines removed by R1 (inactive).
    pub r1_inactive_machines: usize,
    /// Machines removed by R2 (proxies), with derived θ_d.
    pub r2_proxy_machines: usize,
    /// The derived proxy-degree threshold θ_d.
    pub theta_d: usize,
    /// Domains removed by R3 (single querier).
    pub r3_single_machine_domains: usize,
    /// Domains removed by R4 (too popular), with derived θ_m.
    pub r4_popular_domains: usize,
    /// The derived popularity threshold θ_m (machines).
    pub theta_m: usize,
}

impl PruneStats {
    /// Fractional reduction of domain nodes, in `[0,1]`.
    pub fn domain_reduction(&self) -> f64 {
        reduction(self.domains_before, self.domains_after)
    }

    /// Fractional reduction of machine nodes, in `[0,1]`.
    pub fn machine_reduction(&self) -> f64 {
        reduction(self.machines_before, self.machines_after)
    }

    /// Fractional reduction of edges, in `[0,1]`.
    pub fn edge_reduction(&self) -> f64 {
        reduction(self.edges_before, self.edges_after)
    }
}

fn reduction(before: usize, after: usize) -> f64 {
    if before == 0 {
        0.0
    } else {
        (before - after) as f64 / before as f64
    }
}

impl BehaviorGraph {
    /// Applies pruning rules R1–R4 and returns the pruned graph (labels
    /// preserved and machine labels re-propagated) plus statistics.
    ///
    /// Machine rules (R1, R2) are evaluated on the input graph; domain rules
    /// (R3, R4) are evaluated on the machine-filtered subgraph, which is the
    /// conservative order (a domain never loses its known-malware survivors).
    pub fn prune(&self, config: &PruneConfig) -> (BehaviorGraph, PruneStats) {
        let mut stats = PruneStats {
            machines_before: self.machine_count(),
            domains_before: self.domain_count(),
            edges_before: self.edge_count(),
            ..PruneStats::default()
        };

        // θ_d from the degree distribution.
        let mut degrees: Vec<usize> = (0..self.machine_count())
            .map(|mi| (self.m_off[mi + 1] - self.m_off[mi]) as usize)
            .collect();
        let theta_d = percentile(&mut degrees, config.proxy_percentile).max(1);
        stats.theta_d = theta_d;

        let mut keep_machine = vec![true; self.machine_count()];
        for (mi, keep) in keep_machine.iter_mut().enumerate() {
            let deg = (self.m_off[mi + 1] - self.m_off[mi]) as usize;
            if deg > theta_d && theta_d > config.min_machine_degree {
                *keep = false;
                stats.r2_proxy_machines += 1;
            } else if deg <= config.min_machine_degree && self.machine_labels[mi] != Label::Malware
            {
                *keep = false;
                stats.r1_inactive_machines += 1;
            }
        }

        // Domain degrees counting only kept machines.
        let kept_domain_degree: Vec<usize> = (0..self.domain_count())
            .map(|di| {
                let lo = self.d_off[di] as usize;
                let hi = self.d_off[di + 1] as usize;
                self.d_adj[lo..hi]
                    .iter()
                    .filter(|&&m| keep_machine[m as usize])
                    .count()
            })
            .collect();

        // R4: distinct kept machines per e2LD. Domains are grouped by
        // sorting `(e2ld, domain)` pairs — no hash maps — and each group's
        // kept queriers are gathered into one reusable buffer that is
        // sorted + deduped to count distinct machines.
        let theta_m = ((self.machine_count() as f64) * config.popular_fraction).ceil() as usize;
        stats.theta_m = theta_m;
        let mut by_e2ld: Vec<(u32, u32)> = (0..self.domain_count() as u32)
            .map(|di| (self.domain_e2ld[di as usize].0, di))
            .collect();
        by_e2ld.sort_unstable();
        let mut group: Vec<u32> = Vec::new();
        // Ascending, so membership below is a binary search.
        let mut popular_e2ld: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < by_e2ld.len() {
            let e = by_e2ld[i].0;
            group.clear();
            while i < by_e2ld.len() && by_e2ld[i].0 == e {
                let di = by_e2ld[i].1 as usize;
                let lo = self.d_off[di] as usize;
                let hi = self.d_off[di + 1] as usize;
                for &m in &self.d_adj[lo..hi] {
                    if keep_machine[m as usize] {
                        group.push(m);
                    }
                }
                i += 1;
            }
            group.sort_unstable();
            group.dedup();
            if group.len() >= theta_m && theta_m > 0 {
                popular_e2ld.push(e);
            }
        }

        let mut keep_domain = vec![true; self.domain_count()];
        for (di, keep) in keep_domain.iter_mut().enumerate() {
            if popular_e2ld.binary_search(&self.domain_e2ld[di].0).is_ok() {
                *keep = false;
                stats.r4_popular_domains += 1;
            } else if kept_domain_degree[di] <= 1 && self.domain_labels[di] != Label::Malware {
                *keep = false;
                stats.r3_single_machine_domains += 1;
            } else if kept_domain_degree[di] == 0 {
                // Known-malware domain whose every querier was pruned: it can
                // no longer contribute evidence; drop it too.
                *keep = false;
            }
        }

        // Extract the surviving subgraph directly from the CSR arrays
        // (domain labels carried over, machine labels re-propagated).
        let pruned = self.keep_subgraph(&keep_machine, &keep_domain);

        stats.machines_after = pruned.machine_count();
        stats.domains_after = pruned.domain_count();
        stats.edges_after = pruned.edge_count();
        (pruned, stats)
    }
}

impl BehaviorGraph {
    /// Removes machines that look like security scanners / blacklist
    /// probers: machines querying at least `max_malware_degree` known
    /// malware domains in one day.
    ///
    /// Real infections query a handful of control domains per day (Fig. 3:
    /// practically never more than twenty), while monitoring clients probe
    /// *hundreds* of blacklisted names. The paper mentions using heuristics
    /// to verify the filtered graphs contained no such clients (Section
    /// VI); this is that heuristic, applied before feature measurement when
    /// a deployment expects probing clients.
    pub fn without_probing_machines(&self, max_malware_degree: u32) -> (BehaviorGraph, usize) {
        let probing: Vec<bool> = (0..self.machine_count())
            .map(|mi| self.machine_malware_degree[mi] >= max_malware_degree)
            .collect();
        let removed = probing.iter().filter(|&&p| p).count();
        if removed == 0 {
            // segugio-lint: allow(H4, by-value return contract: the no-probing-clients early exit must still hand back an owned graph)
            return (self.clone(), 0);
        }
        let keep_machine: Vec<bool> = probing.iter().map(|&p| !p).collect();
        // Domains with no surviving querier are dropped by the extraction
        // itself, so every domain can be nominally kept here.
        let keep_domain = vec![true; self.domain_count()];
        let filtered = self.keep_subgraph(&keep_machine, &keep_domain);
        (filtered, removed)
    }

    /// Extracts the subgraph induced by the kept machines × kept domains,
    /// dropping nodes left without a single surviving edge (the same node
    /// universe a [`GraphBuilder`](crate::GraphBuilder) rebuild from the
    /// surviving edge list would produce, without materializing that list
    /// or re-sorting anything — both remaps are monotone, so every CSR
    /// adjacency stays ascending by construction).
    ///
    /// Domain labels are carried over from `self`; machine labels and
    /// malware degrees are re-propagated from the surviving structure.
    fn keep_subgraph(&self, keep_machine: &[bool], keep_domain: &[bool]) -> BehaviorGraph {
        let nm = self.machines.len();
        let nd = self.domains.len();

        // Surviving degree per node: edges with both endpoints kept.
        let mut m_deg = vec![0u32; nm];
        let mut d_deg = vec![0u32; nd];
        for mi in 0..nm {
            if !keep_machine[mi] {
                continue;
            }
            for pos in self.m_off[mi] as usize..self.m_off[mi + 1] as usize {
                let di = self.m_adj[pos] as usize;
                if keep_domain[di] {
                    m_deg[mi] += 1;
                    d_deg[di] += 1;
                }
            }
        }

        // Dense remaps over nodes that kept at least one edge, plus both
        // offset arrays by prefix sum.
        let mut machines: Vec<MachineId> = Vec::new();
        let mut m_remap: Vec<u32> = vec![u32::MAX; nm];
        let mut m_off: Vec<u32> = Vec::new();
        m_off.push(0);
        let mut m_total = 0u32;
        for (mi, &deg) in m_deg.iter().enumerate() {
            if deg > 0 {
                m_remap[mi] = machines.len() as u32;
                machines.push(self.machines[mi]);
                m_total += deg;
                m_off.push(m_total);
            }
        }
        let mut domains = Vec::new();
        let mut d_remap: Vec<u32> = vec![u32::MAX; nd];
        let mut d_off: Vec<u32> = Vec::new();
        d_off.push(0);
        let mut domain_e2ld = Vec::new();
        let mut domain_labels = Vec::new();
        let mut ip_off: Vec<u32> = Vec::new();
        ip_off.push(0);
        let mut ip_pool: Vec<Ipv4> = Vec::new();
        let mut d_total = 0u32;
        for (di, &deg) in d_deg.iter().enumerate() {
            if deg > 0 {
                d_remap[di] = domains.len() as u32;
                domains.push(self.domains[di]);
                d_total += deg;
                d_off.push(d_total);
                domain_e2ld.push(self.domain_e2ld[di]);
                domain_labels.push(self.domain_labels[di]);
                let lo = self.ip_off[di] as usize;
                let hi = self.ip_off[di + 1] as usize;
                ip_pool.extend_from_slice(&self.ip_pool[lo..hi]);
                ip_off.push(ip_pool.len() as u32);
            }
        }

        // Filter + remap both adjacency directions; each per-node list is
        // an in-order subset remapped monotonically, hence still ascending.
        let edges = m_total as usize;
        let mut m_adj: Vec<u32> = Vec::with_capacity(edges);
        for (mi, &remapped) in m_remap.iter().enumerate().take(nm) {
            if remapped == u32::MAX {
                continue;
            }
            for pos in self.m_off[mi] as usize..self.m_off[mi + 1] as usize {
                let r = d_remap[self.m_adj[pos] as usize];
                if r != u32::MAX {
                    m_adj.push(r);
                }
            }
        }
        let mut d_adj: Vec<u32> = Vec::with_capacity(edges);
        for (di, &remapped) in d_remap.iter().enumerate().take(nd) {
            if remapped == u32::MAX {
                continue;
            }
            for pos in self.d_off[di] as usize..self.d_off[di + 1] as usize {
                let r = m_remap[self.d_adj[pos] as usize];
                if r != u32::MAX {
                    d_adj.push(r);
                }
            }
        }

        let n_m = machines.len();
        let mut graph = BehaviorGraph {
            day: self.day,
            machines,
            domains,
            domain_e2ld,
            ip_off,
            ip_pool,
            m_off,
            m_adj,
            d_off,
            d_adj,
            domain_labels,
            machine_labels: vec![Label::Unknown; n_m],
            machine_malware_degree: vec![0; n_m],
        };
        labeling::propagate_machine_labels(&mut graph);
        #[cfg(debug_assertions)]
        if let Err(violation) = graph.validate() {
            unreachable!("subgraph extraction produced an invalid graph: {violation}");
        }
        graph
    }
}

/// The value at `pct` (in `[0,1]`) of the sorted distribution. `data` is
/// sorted in place.
fn percentile(data: &mut [usize], pct: f64) -> usize {
    if data.is_empty() {
        return 0;
    }
    data.sort_unstable();
    let rank = ((data.len() as f64 - 1.0) * pct.clamp(0.0, 1.0)).round() as usize;
    data[rank]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::labeling::apply_seed_labels;
    use segugio_model::{Day, DomainId, E2ldId, MachineId};

    /// Builds a graph with:
    /// - machines 0..10 querying 8 ordinary domains each (active, kept)
    /// - machine 90: queries 2 domains only (inactive → R1) but one is malware? no
    /// - machine 91: labeled malware, queries only malware domain 500 and 501
    /// - machine 92: proxy querying everything
    /// - domain 600: queried by one machine only (R3)
    /// - domain 700 (e2LD 7): queried by everyone (R4)
    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(0));
        for m in 0..10u32 {
            for d in 0..8u32 {
                b.add_query(MachineId(m), DomainId(d));
                b.set_e2ld(DomainId(d), E2ldId(d));
            }
            // Popular domain 700 queried by all machines.
            b.add_query(MachineId(m), DomainId(700));
        }
        b.set_e2ld(DomainId(700), E2ldId(7));
        // Inactive benign machine 90.
        b.add_query(MachineId(90), DomainId(0));
        b.add_query(MachineId(90), DomainId(1));
        // Inactive infected machine 91 queries malware domains 500, 501.
        b.add_query(MachineId(91), DomainId(500));
        b.add_query(MachineId(91), DomainId(501));
        b.set_e2ld(DomainId(500), E2ldId(500));
        b.set_e2ld(DomainId(501), E2ldId(501));
        // Second querier for 500/501 so they survive with a querier even if
        // machine 91 mattered; machine 5 is infected too.
        b.add_query(MachineId(5), DomainId(500));
        b.add_query(MachineId(5), DomainId(501));
        // Domain 600 queried by exactly one active machine.
        b.add_query(MachineId(3), DomainId(600));
        b.set_e2ld(DomainId(600), E2ldId(600));
        // Proxy machine 92 queries a huge set of unique domains.
        for d in 1000..1400u32 {
            b.add_query(MachineId(92), DomainId(d));
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(
            &mut g,
            |d| d == DomainId(500) || d == DomainId(501),
            |_| false,
        );
        g
    }

    fn config() -> PruneConfig {
        PruneConfig {
            min_machine_degree: 5,
            proxy_percentile: 0.95,
            popular_fraction: 1.0 / 3.0,
        }
    }

    #[test]
    fn r1_drops_inactive_benign_but_keeps_infected() {
        let g = sample();
        let (p, stats) = g.prune(&config());
        assert!(
            p.machine_idx(MachineId(90)).is_none(),
            "inactive benign dropped"
        );
        assert!(
            p.machine_idx(MachineId(91)).is_some(),
            "infected low-degree kept"
        );
        assert!(stats.r1_inactive_machines >= 1);
    }

    #[test]
    fn r2_drops_proxies() {
        let g = sample();
        let (p, stats) = g.prune(&config());
        assert!(p.machine_idx(MachineId(92)).is_none(), "proxy dropped");
        assert!(stats.r2_proxy_machines >= 1);
        assert!(stats.theta_d > 5);
    }

    #[test]
    fn r3_drops_single_querier_domains_but_keeps_malware() {
        let g = sample();
        let (p, stats) = g.prune(&config());
        assert!(
            p.domain_idx(DomainId(600)).is_none(),
            "single-querier dropped"
        );
        assert!(p.domain_idx(DomainId(500)).is_some(), "malware domain kept");
        assert!(stats.r3_single_machine_domains >= 1);
    }

    #[test]
    fn r4_drops_popular_e2lds() {
        let g = sample();
        let (p, stats) = g.prune(&config());
        assert!(
            p.domain_idx(DomainId(700)).is_none(),
            "popular domain dropped"
        );
        assert!(stats.r4_popular_domains >= 1);
    }

    #[test]
    fn labels_survive_pruning() {
        let g = sample();
        let (p, _) = g.prune(&config());
        let d500 = p.domain_idx(DomainId(500)).unwrap();
        assert_eq!(p.domain_label(d500), Label::Malware);
        let m91 = p.machine_idx(MachineId(91)).unwrap();
        assert_eq!(p.machine_label(m91), Label::Malware);
        assert_eq!(p.machine_malware_degree(m91), 2);
    }

    #[test]
    fn stats_are_consistent() {
        let g = sample();
        let (p, stats) = g.prune(&config());
        assert_eq!(stats.machines_after, p.machine_count());
        assert_eq!(stats.domains_after, p.domain_count());
        assert_eq!(stats.edges_after, p.edge_count());
        assert!(stats.domain_reduction() > 0.0);
        assert!(stats.machine_reduction() > 0.0);
        assert!(stats.edge_reduction() > 0.0);
    }

    #[test]
    fn probing_machines_are_removed() {
        let mut b = GraphBuilder::new(Day(0));
        // 40 malware domains, each with two ordinary victims.
        for d in 0..40u32 {
            b.add_query(MachineId(0), DomainId(d));
            b.add_query(MachineId(1), DomainId(d));
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        // An ordinary infected machine querying 3 of them.
        for d in 0..3u32 {
            b.add_query(MachineId(2), DomainId(d));
        }
        let mut g = b.build();
        apply_seed_labels(&mut g, |_| true, |_| false);
        // Machines 0 and 1 query 40 known malware domains: probers.
        let (filtered, removed) = g.without_probing_machines(21);
        assert_eq!(removed, 2);
        assert!(filtered.machine_idx(MachineId(0)).is_none());
        assert!(filtered.machine_idx(MachineId(2)).is_some());
        // No probers: graph unchanged.
        let (same, zero) = filtered.without_probing_machines(21);
        assert_eq!(zero, 0);
        assert_eq!(same.machine_count(), filtered.machine_count());
    }

    #[test]
    fn percentile_helper() {
        let mut v = vec![1, 2, 3, 4, 100];
        assert_eq!(percentile(&mut v, 1.0), 100);
        assert_eq!(percentile(&mut v, 0.0), 1);
        assert_eq!(percentile(&mut v, 0.5), 3);
        assert_eq!(percentile(&mut [], 0.5), 0);
    }
}
