//! Machine–domain bipartite behavior graph.
//!
//! One day of DNS traffic between ISP clients and the local resolver is
//! summarized as an undirected bipartite graph `G = (M, D, E)`: machine
//! `m_i` is connected to domain `d_j` iff `m_i` queried `d_j` during the
//! observation window (paper Section II-A1). Domain nodes carry annotations
//! (resolved IP set, e2LD); machine and domain nodes carry three-valued
//! labels seeded from a blacklist/whitelist and propagated to machines.
//!
//! The crate provides:
//!
//! - [`GraphBuilder`] / [`BehaviorGraph`] — compact CSR storage in both
//!   directions, sized for millions of edges;
//! - [`DeltaBuilder`] — day-over-day incremental construction that reuses
//!   the previous day's sorted structure, bit-for-bit equal to a scratch
//!   build;
//! - [`EdgeRuns`] — bounded-memory edge accumulation in fixed-capacity
//!   sorted runs (disk-spillable), consumed by the streamed counting-sort
//!   builder [`GraphBuilder::from_runs`] for paper-scale days;
//! - [`labeling`] — seed-label application and machine-label propagation;
//! - [`pruning`] — the conservative filtering rules R1–R4 with the paper's
//!   two exceptions (infected machines survive R1; known malware domains
//!   survive R3);
//! - [`hiding`] — the label-hiding view used when measuring features for
//!   known (training) domains without leaking their own ground truth;
//! - [`persist`] — versioned line-oriented text round-trip of a graph, the
//!   CSR layer of `segugio-core`'s crash-safe checkpoints.

#![warn(missing_docs)]
pub mod builder;
pub mod delta;
pub mod graph;
pub mod hiding;
pub mod labeling;
pub mod persist;
pub mod pruning;
pub mod runs;
pub mod stats;
pub mod validate;

pub use builder::GraphBuilder;
pub use delta::DeltaBuilder;
pub use graph::{BehaviorGraph, DomainIdx, MachineIdx};
pub use hiding::HiddenLabelView;
pub use persist::{read_graph, write_graph};
pub use pruning::{PruneConfig, PruneStats};
pub use runs::{EdgeRuns, DEFAULT_RUN_CAPACITY};
pub use stats::{DegreeSummary, GraphStats};
