//! Day-over-day incremental graph construction.
//!
//! Consecutive days of ISP traffic share most of their edges: the same
//! machines query mostly the same domains. [`DeltaBuilder`] exploits that
//! overlap by carrying yesterday's frozen [`BehaviorGraph`] — whose node
//! lists and CSR arrays are already sorted — and building today's graph
//! with one classification pass over today's raw queries plus sorted
//! merges, instead of re-sorting the full edge list from scratch.
//!
//! The output is **bit-for-bit identical** to what
//! [`GraphBuilder`](crate::GraphBuilder) produces from the same day's
//! input: same node order, same CSR layout, same annotations, labels reset
//! to [`Label::Unknown`]. Downstream labeling/pruning/feature code cannot
//! observe which path built the graph.

use segugio_model::{Day, DomainId, E2ldId, Ipv4, Label, MachineId};

use crate::graph::BehaviorGraph;

/// Builds each day's graph as a delta against the previous day's.
///
/// Seed it with the first day's graph (built by
/// [`GraphBuilder`](crate::GraphBuilder)), then call
/// [`advance`](Self::advance) once per subsequent day.
///
/// # Example
///
/// ```
/// use segugio_graph::{DeltaBuilder, GraphBuilder};
/// use segugio_model::{Day, DomainId, E2ldId, MachineId};
///
/// let mut b = GraphBuilder::new(Day(0));
/// b.add_query(MachineId(1), DomainId(7));
/// let day0 = b.build();
/// let mut delta = DeltaBuilder::new(&day0);
/// // Day 1: machine 1 keeps querying domain 7, machine 2 appears.
/// let day1 = delta.advance(
///     Day(1),
///     &[(MachineId(1), DomainId(7)), (MachineId(2), DomainId(7))],
///     &[],
///     |d| E2ldId(d.0),
/// );
/// assert_eq!(day1.edge_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaBuilder {
    prev: BehaviorGraph,
    scratch: DeltaScratch,
}

/// Per-day transient state of [`DeltaBuilder::advance`], kept on the
/// builder so consecutive days reuse the same heap blocks instead of
/// reallocating O(edges) of scratch every morning.
#[derive(Debug, Clone, Default)]
struct DeltaScratch {
    /// Which positions of yesterday's machine-CSR survived into today.
    seen: Vec<bool>,
    /// Today's genuinely new edges, sorted and deduped.
    added: Vec<(MachineId, DomainId)>,
    /// Domain column of `added`, re-sorted by domain.
    add_domains: Vec<DomainId>,
    /// Flattened, sorted, deduped `(domain, ip)` resolution pairs.
    pairs: Vec<(DomainId, Ipv4)>,
    /// Per-domain scatter cursor for the domain-CSR fill.
    cursor: Vec<u32>,
    /// Surviving-edge degree per old machine / domain (step 2).
    kept_m_deg: Vec<u32>,
    kept_d_deg: Vec<u32>,
    /// Added-edge degree per old machine / domain (step 3).
    add_m_deg: Vec<u32>,
    add_d_deg: Vec<u32>,
    /// Machines / `(domain, degree)` pairs appearing for the first time
    /// today (step 3).
    new_machines: Vec<MachineId>,
    new_domains: Vec<(DomainId, u32)>,
    /// Old→next domain index remap, `u32::MAX` for dropped domains
    /// (step 4).
    remap_d: Vec<u32>,
    /// Per next machine: its index in yesterday's machine list, or
    /// `u32::MAX` when new (step 4).
    m_prev_idx: Vec<u32>,
    /// Merged (surviving + added) degree per next domain (step 4).
    d_deg_next: Vec<u32>,
}

impl DeltaBuilder {
    /// Starts delta construction from `initial`, typically the first day's
    /// from-scratch graph.
    pub fn new(initial: &BehaviorGraph) -> Self {
        DeltaBuilder {
            // segugio-lint: allow(H4, one-time constructor copy — runs once per tracker lifetime, not per day)
            prev: initial.clone(),
            scratch: DeltaScratch::default(),
        }
    }

    /// The graph the next [`advance`](Self::advance) will diff against.
    pub fn prev(&self) -> &BehaviorGraph {
        &self.prev
    }

    /// Builds `day`'s graph from raw `queries` and per-domain `resolutions`,
    /// reusing yesterday's sorted structure for every edge that persists.
    ///
    /// `e2ld_of` must assign the same e2LD a `GraphBuilder` caller would via
    /// [`set_e2ld`](crate::GraphBuilder::set_e2ld); it is consulted for
    /// every domain appearing in `queries`. Resolutions of domains that were
    /// not queried today are ignored, exactly as `GraphBuilder` drops
    /// annotations for domains outside the edge list.
    pub fn advance<F>(
        &mut self,
        day: Day,
        queries: &[(MachineId, DomainId)],
        resolutions: &[(DomainId, Vec<Ipv4>)],
        e2ld_of: F,
    ) -> BehaviorGraph
    where
        F: Fn(DomainId) -> E2ldId,
    {
        let DeltaBuilder { prev, scratch } = self;
        let prev = &*prev;
        let nm = prev.machines.len();
        let nd = prev.domains.len();
        let ne = prev.m_adj.len();

        // 1. Classify today's queries against yesterday's edge set: an edge
        //    that already existed marks its position in the old machine-CSR
        //    as still live; everything else is a genuinely new edge.
        let seen = &mut scratch.seen;
        seen.clear();
        seen.resize(ne, false);
        let added = &mut scratch.added;
        added.clear();
        for &(m, d) in queries {
            let (Ok(mi), Ok(di)) = (
                prev.machines.binary_search(&m),
                prev.domains.binary_search(&d),
            ) else {
                added.push((m, d));
                continue;
            };
            let lo = prev.m_off[mi] as usize;
            let hi = prev.m_off[mi + 1] as usize;
            match prev.m_adj[lo..hi].binary_search(&(di as u32)) {
                Ok(pos) => seen[lo + pos] = true,
                Err(_) => added.push((m, d)),
            }
        }
        added.sort_unstable();
        added.dedup();

        // 2. Surviving-edge degrees per old node.
        let kept_m_deg = &mut scratch.kept_m_deg;
        kept_m_deg.clear();
        kept_m_deg.resize(nm, 0);
        let kept_d_deg = &mut scratch.kept_d_deg;
        kept_d_deg.clear();
        kept_d_deg.resize(nd, 0);
        let mut kept_edges = 0usize;
        for (mi, deg) in kept_m_deg.iter_mut().enumerate() {
            for pos in prev.m_off[mi] as usize..prev.m_off[mi + 1] as usize {
                if seen[pos] {
                    *deg += 1;
                    kept_d_deg[prev.m_adj[pos] as usize] += 1;
                    kept_edges += 1;
                }
            }
        }

        // 3. Added-edge degrees, split between old nodes and brand-new ones.
        //    `added` is sorted by machine, so machine runs are contiguous and
        //    `new_machines` comes out sorted.
        let add_m_deg = &mut scratch.add_m_deg;
        add_m_deg.clear();
        add_m_deg.resize(nm, 0);
        let new_machines = &mut scratch.new_machines;
        new_machines.clear();
        let mut i = 0;
        while i < added.len() {
            let m = added[i].0;
            let mut j = i;
            while j < added.len() && added[j].0 == m {
                j += 1;
            }
            match prev.machines.binary_search(&m) {
                Ok(mi) => add_m_deg[mi] += (j - i) as u32,
                Err(_) => new_machines.push(m),
            }
            i = j;
        }
        let add_domains = &mut scratch.add_domains;
        add_domains.clear();
        add_domains.extend(added.iter().map(|&(_, d)| d));
        add_domains.sort_unstable();
        let add_d_deg = &mut scratch.add_d_deg;
        add_d_deg.clear();
        add_d_deg.resize(nd, 0);
        let new_domains = &mut scratch.new_domains;
        new_domains.clear();
        let mut i = 0;
        while i < add_domains.len() {
            let d = add_domains[i];
            let mut j = i;
            while j < add_domains.len() && add_domains[j] == d {
                j += 1;
            }
            match prev.domains.binary_search(&d) {
                Ok(di) => add_d_deg[di] += (j - i) as u32,
                Err(_) => new_domains.push((d, (j - i) as u32)),
            }
            i = j;
        }

        // 4. Merge old (still-connected) and new node lists. Both inputs are
        //    sorted and disjoint, so each output list is sorted and the
        //    old→new index remaps are monotone — exactly the order a scratch
        //    sort of today's edges would produce.
        let mut machines_next: Vec<MachineId> = Vec::with_capacity(nm + new_machines.len());
        // For each next machine: its index in `prev.machines`, or u32::MAX
        // if it is new today.
        let m_prev_idx = &mut scratch.m_prev_idx;
        m_prev_idx.clear();
        let (mut pi, mut ni) = (0usize, 0usize);
        while pi < nm || ni < new_machines.len() {
            let take_prev =
                ni >= new_machines.len() || (pi < nm && prev.machines[pi] < new_machines[ni]);
            if take_prev {
                if kept_m_deg[pi] + add_m_deg[pi] > 0 {
                    machines_next.push(prev.machines[pi]);
                    m_prev_idx.push(pi as u32);
                }
                pi += 1;
            } else {
                machines_next.push(new_machines[ni]);
                m_prev_idx.push(u32::MAX);
                ni += 1;
            }
        }

        let mut domains_next: Vec<DomainId> = Vec::with_capacity(nd + new_domains.len());
        let remap_d = &mut scratch.remap_d;
        remap_d.clear();
        remap_d.resize(nd, u32::MAX);
        // Degree of each next domain (surviving + added edges).
        let d_deg_next = &mut scratch.d_deg_next;
        d_deg_next.clear();
        let (mut pi, mut ni) = (0usize, 0usize);
        while pi < nd || ni < new_domains.len() {
            let take_prev =
                ni >= new_domains.len() || (pi < nd && prev.domains[pi] < new_domains[ni].0);
            if take_prev {
                let deg = kept_d_deg[pi] + add_d_deg[pi];
                if deg > 0 {
                    remap_d[pi] = domains_next.len() as u32;
                    domains_next.push(prev.domains[pi]);
                    d_deg_next.push(deg);
                }
                pi += 1;
            } else {
                domains_next.push(new_domains[ni].0);
                d_deg_next.push(new_domains[ni].1);
                ni += 1;
            }
        }
        let resolve_domain = |d: DomainId| -> u32 {
            match domains_next.binary_search(&d) {
                Ok(idx) => idx as u32,
                Err(_) => unreachable!("added-edge domain missing from merged domain list"),
            }
        };

        // 5. Machine CSR: per machine, merge its surviving old neighbors
        //    (already ascending after the monotone remap) with its run of
        //    added edges (ascending, disjoint from the survivors).
        let total_edges = kept_edges + added.len();
        let mut m_off_next: Vec<u32> = Vec::with_capacity(machines_next.len() + 1);
        m_off_next.push(0);
        let mut m_adj_next: Vec<u32> = Vec::with_capacity(total_edges);
        let mut ac = 0usize;
        for (next_i, &m) in machines_next.iter().enumerate() {
            let run_start = ac;
            while ac < added.len() && added[ac].0 == m {
                ac += 1;
            }
            let mut add_pos = run_start;
            match m_prev_idx[next_i] {
                u32::MAX => {
                    for &(_, d) in &added[add_pos..ac] {
                        m_adj_next.push(resolve_domain(d));
                    }
                }
                prev_mi => {
                    let mi = prev_mi as usize;
                    let mut prev_pos = prev.m_off[mi] as usize;
                    let prev_hi = prev.m_off[mi + 1] as usize;
                    loop {
                        while prev_pos < prev_hi && !seen[prev_pos] {
                            prev_pos += 1;
                        }
                        match (prev_pos < prev_hi, add_pos < ac) {
                            (false, false) => break,
                            (true, false) => {
                                m_adj_next.push(remap_d[prev.m_adj[prev_pos] as usize]);
                                prev_pos += 1;
                            }
                            (false, true) => {
                                m_adj_next.push(resolve_domain(added[add_pos].1));
                                add_pos += 1;
                            }
                            (true, true) => {
                                let pv = remap_d[prev.m_adj[prev_pos] as usize];
                                let av = resolve_domain(added[add_pos].1);
                                if pv < av {
                                    m_adj_next.push(pv);
                                    prev_pos += 1;
                                } else {
                                    m_adj_next.push(av);
                                    add_pos += 1;
                                }
                            }
                        }
                    }
                }
            }
            m_off_next.push(m_adj_next.len() as u32);
        }

        // 6. Domain CSR: prefix-sum the merged degrees, then scatter by
        //    walking machines in ascending order — each domain's querier
        //    list comes out sorted without a per-domain sort pass.
        let mut d_off_next: Vec<u32> = vec![0; domains_next.len() + 1];
        for (i, &deg) in d_deg_next.iter().enumerate() {
            d_off_next[i + 1] = d_off_next[i] + deg;
        }
        let cursor = &mut scratch.cursor;
        cursor.clear();
        cursor.extend_from_slice(&d_off_next[..domains_next.len()]);
        let mut d_adj_next: Vec<u32> = vec![0; total_edges];
        for next_m in 0..machines_next.len() {
            let lo = m_off_next[next_m] as usize;
            let hi = m_off_next[next_m + 1] as usize;
            for &dn in &m_adj_next[lo..hi] {
                d_adj_next[cursor[dn as usize] as usize] = next_m as u32;
                cursor[dn as usize] += 1;
            }
        }

        // 7. Annotations come from *today's* observations only, mirroring
        //    the scratch builder (per-domain sorted, deduped IP sets).
        let pairs = &mut scratch.pairs;
        pairs.clear();
        pairs.extend(
            resolutions
                .iter()
                .flat_map(|(d, ips)| ips.iter().map(move |&ip| (*d, ip))),
        );
        pairs.sort_unstable();
        pairs.dedup();
        let mut ip_off: Vec<u32> = Vec::with_capacity(domains_next.len() + 1);
        ip_off.push(0);
        let mut ip_pool: Vec<Ipv4> = Vec::with_capacity(pairs.len());
        let mut pc = 0usize;
        for &d in &domains_next {
            while pc < pairs.len() && pairs[pc].0 < d {
                pc += 1;
            }
            while pc < pairs.len() && pairs[pc].0 == d {
                ip_pool.push(pairs[pc].1);
                pc += 1;
            }
            ip_off.push(ip_pool.len() as u32);
        }
        // segugio-lint: allow(H3, the e2ld column moves into the returned graph — one exact-size output allocation)
        let domain_e2ld: Vec<E2ldId> = domains_next.iter().map(|&d| e2ld_of(d)).collect();

        let n_m = machines_next.len();
        let n_d = domains_next.len();
        let graph = BehaviorGraph {
            day,
            machines: machines_next,
            domains: domains_next,
            domain_e2ld,
            ip_off,
            ip_pool,
            m_off: m_off_next,
            m_adj: m_adj_next,
            d_off: d_off_next,
            d_adj: d_adj_next,
            domain_labels: vec![Label::Unknown; n_d],
            machine_labels: vec![Label::Unknown; n_m],
            machine_malware_degree: vec![0; n_m],
        };
        #[cfg(debug_assertions)]
        if let Err(violation) = graph.validate() {
            unreachable!("delta builder produced an invalid graph: {violation}");
        }
        // segugio-lint: allow(H2, the builder must retain today's graph to diff tomorrow against while the caller owns the return — one O(graph) copy per day)
        self.prev = graph.clone();
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use proptest::prelude::*;

    /// Builds the same day from scratch so delta output can be compared.
    fn scratch(
        day: Day,
        queries: &[(MachineId, DomainId)],
        resolutions: &[(DomainId, Vec<Ipv4>)],
    ) -> BehaviorGraph {
        let mut b = GraphBuilder::new(day);
        b.add_queries(queries.iter().copied());
        for (d, ips) in resolutions {
            b.set_e2ld(*d, E2ldId(d.0 / 2));
            for &ip in ips {
                b.add_resolution(*d, ip);
            }
        }
        for &(_, d) in queries {
            b.set_e2ld(d, E2ldId(d.0 / 2));
        }
        b.build()
    }

    fn assert_same(a: &BehaviorGraph, b: &BehaviorGraph) {
        assert_eq!(a.day, b.day);
        assert_eq!(a.machines, b.machines);
        assert_eq!(a.domains, b.domains);
        assert_eq!(a.domain_e2ld, b.domain_e2ld);
        assert_eq!(a.ip_off, b.ip_off);
        assert_eq!(a.ip_pool, b.ip_pool);
        assert_eq!(a.m_off, b.m_off);
        assert_eq!(a.m_adj, b.m_adj);
        assert_eq!(a.d_off, b.d_off);
        assert_eq!(a.d_adj, b.d_adj);
        assert_eq!(a.domain_labels, b.domain_labels);
        assert_eq!(a.machine_labels, b.machine_labels);
        assert_eq!(a.machine_malware_degree, b.machine_malware_degree);
    }

    #[test]
    fn advance_matches_scratch_on_handwritten_days() {
        let days: Vec<Vec<(u32, u32)>> = vec![
            // Day 0: a small clique.
            vec![(1, 10), (1, 11), (2, 10), (2, 12)],
            // Day 1: one edge dropped, one added, one new machine + domain.
            vec![(1, 10), (1, 11), (2, 12), (2, 13), (5, 99)],
            // Day 2: everything churns away except one edge.
            vec![(5, 99), (7, 3)],
            // Day 3: empty day.
            vec![],
            // Day 4: everything returns.
            vec![(1, 10), (1, 11), (2, 10), (2, 12), (5, 99)],
        ];
        let to_queries = |day: &[(u32, u32)]| -> Vec<(MachineId, DomainId)> {
            day.iter()
                .map(|&(m, d)| (MachineId(m), DomainId(d)))
                .collect()
        };
        let q0 = to_queries(&days[0]);
        let first = scratch(Day(0), &q0, &[]);
        let mut delta = DeltaBuilder::new(&first);
        for (i, day) in days.iter().enumerate().skip(1) {
            let q = to_queries(day);
            let incremental = delta.advance(Day(i as u32), &q, &[], |d| E2ldId(d.0 / 2));
            assert_same(&incremental, &scratch(Day(i as u32), &q, &[]));
        }
    }

    #[test]
    fn resolutions_annotate_only_queried_domains() {
        let q0 = vec![(MachineId(1), DomainId(4))];
        let mut delta = DeltaBuilder::new(&scratch(Day(0), &q0, &[]));
        let q1 = vec![(MachineId(1), DomainId(4)), (MachineId(1), DomainId(5))];
        let ip = |n| Ipv4::from_octets(10, 0, 0, n);
        let res = vec![
            (DomainId(4), vec![ip(2), ip(1), ip(2)]),
            // Never queried today: dropped, like GraphBuilder's ips map.
            (DomainId(77), vec![ip(9)]),
        ];
        let g = delta.advance(Day(1), &q1, &res, |d| E2ldId(d.0 / 2));
        assert_same(&g, &scratch(Day(1), &q1, &res));
        let d4 = g.domain_idx(DomainId(4)).unwrap();
        assert_eq!(g.domain_ips(d4), &[ip(1), ip(2)]);
        assert!(g.domain_idx(DomainId(77)).is_none());
    }

    #[test]
    fn repeated_advances_keep_matching() {
        // Deterministic pseudo-random multi-day churn without rand: a simple
        // LCG drives which edges exist each day.
        let mut state = 0x2545F491u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut prev_queries: Vec<(MachineId, DomainId)> = Vec::new();
        let mut delta: Option<DeltaBuilder> = None;
        for day in 0..12u32 {
            let mut queries: Vec<(MachineId, DomainId)> = Vec::new();
            // ~70% of yesterday's edges persist.
            for &e in &prev_queries {
                if next() % 10 < 7 {
                    queries.push(e);
                }
            }
            // A handful of fresh edges, possibly duplicating survivors.
            for _ in 0..(next() % 20) {
                queries.push((MachineId(next() % 15), DomainId(next() % 40)));
            }
            let reference = scratch(Day(day), &queries, &[]);
            match delta.as_mut() {
                None => delta = Some(DeltaBuilder::new(&reference)),
                Some(d) => {
                    let g = d.advance(Day(day), &queries, &[], |d| E2ldId(d.0 / 2));
                    assert_same(&g, &reference);
                }
            }
            prev_queries = queries;
        }
    }

    proptest! {
        #[test]
        #[cfg_attr(miri, ignore = "proptest case volume is too slow under Miri")]
        fn advance_always_matches_scratch(
            day_edges in proptest::collection::vec(
                proptest::collection::vec((0u32..12, 0u32..25), 0..60),
                2..6,
            ),
        ) {
            let to_queries = |day: &Vec<(u32, u32)>| -> Vec<(MachineId, DomainId)> {
                day.iter().map(|&(m, d)| (MachineId(m), DomainId(d))).collect()
            };
            let q0 = to_queries(&day_edges[0]);
            let mut delta = DeltaBuilder::new(&scratch(Day(0), &q0, &[]));
            for (i, day) in day_edges.iter().enumerate().skip(1) {
                let q = to_queries(day);
                let g = delta.advance(Day(i as u32), &q, &[], |d| E2ldId(d.0 / 2));
                assert_same(&g, &scratch(Day(i as u32), &q, &[]));
            }
        }
    }
}
