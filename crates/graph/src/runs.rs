//! Bounded-memory edge accumulation: fixed-capacity sorted runs with a
//! binary scratch-file spill.
//!
//! A paper-scale day observes hundreds of millions of machine↔domain
//! query pairs — far too many to buffer in one `Vec` the way
//! [`GraphBuilder::add_queries`](crate::GraphBuilder::add_queries) expects.
//! [`EdgeRuns`] accepts the pairs one at a time and keeps only a single
//! *run* (a fixed-capacity buffer) in RAM: when the buffer fills it is
//! sorted, deduplicated and appended to an anonymous temporary file as
//! little-endian `u32` pairs. The merged, globally deduplicated,
//! ascending edge stream is replayed on demand by a k-way merge over the
//! sealed runs — which is exactly the shape the streamed counting-sort
//! builder ([`GraphBuilder::from_runs`](crate::GraphBuilder::from_runs))
//! consumes. Peak memory is `O(run capacity + runs × refill buffer)`,
//! independent of the day's edge count.
//!
//! The scratch file is unlinked immediately after creation (classic
//! anonymous-tempfile idiom), so the kernel reclaims it when the value is
//! dropped even on abnormal exit. If the scratch disk fails, sealing
//! falls back to keeping the run in memory — accumulation never loses
//! data; only replay ([`for_each_merged`](EdgeRuns::for_each_merged))
//! surfaces I/O errors.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use segugio_model::{DomainId, MachineId};

/// Default per-run pair capacity: 4Mi pairs ≈ 32 MiB resident, which at
/// the paper's ~320M-edge days means ~80 sealed runs on disk.
pub const DEFAULT_RUN_CAPACITY: usize = 4 << 20;

/// Pairs decoded per spilled-run refill during the merge (64 KiB per
/// active run cursor).
const REFILL_PAIRS: usize = 8 << 10;

/// Bytes per serialized pair: two little-endian `u32`s.
const PAIR_BYTES: usize = 8;

/// Monotonic discriminator for scratch-file names within one process.
static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// One sealed run inside the spill file: byte offset and pair count.
#[derive(Debug, Clone, Copy)]
struct SpilledRun {
    offset: u64,
    pairs: u64,
}

/// The unlinked scratch file and the directory of runs inside it.
#[derive(Debug)]
struct Spill {
    file: File,
    runs: Vec<SpilledRun>,
    bytes: u64,
}

/// Fixed-capacity sorted+deduplicated edge runs, spillable to disk.
///
/// Push every `(machine, domain)` query observation of a day (duplicates
/// welcome), then replay the merged ascending deduplicated edge stream
/// with [`for_each_merged`](Self::for_each_merged) — or hand the whole
/// value to [`GraphBuilder::from_runs`](crate::GraphBuilder::from_runs).
pub struct EdgeRuns {
    capacity: usize,
    /// The one mutable in-RAM run; unsorted until sealed.
    current: Vec<(MachineId, DomainId)>,
    /// Sealed sorted+deduped runs kept in memory (spill disabled by a
    /// failed scratch-file open, or a failed append).
    resident: Vec<Vec<(MachineId, DomainId)>>,
    spill: Option<Spill>,
    /// Total observations pushed (pre-dedup), for telemetry.
    observations: u64,
    /// Largest raw ids seen, for sizing counting-sort arrays.
    max_machine: u32,
    max_domain: u32,
}

impl EdgeRuns {
    /// An empty accumulator with [`DEFAULT_RUN_CAPACITY`].
    pub fn new() -> Self {
        Self::with_run_capacity(DEFAULT_RUN_CAPACITY)
    }

    /// An empty accumulator sealing runs at `capacity` pairs (minimum 1).
    /// Tiny capacities force the spill path — useful in tests.
    pub fn with_run_capacity(capacity: usize) -> Self {
        EdgeRuns {
            capacity: capacity.max(1),
            current: Vec::new(),
            resident: Vec::new(),
            spill: None,
            observations: 0,
            max_machine: 0,
            max_domain: 0,
        }
    }

    /// The per-run pair capacity this accumulator seals at.
    pub fn run_capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations pushed so far (before any deduplication).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.observations == 0
    }

    /// Number of sealed runs (resident + spilled), excluding the open one.
    pub fn sealed_runs(&self) -> usize {
        self.resident.len() + self.spill.as_ref().map_or(0, |s| s.runs.len())
    }

    /// Number of sealed runs that live in the scratch file.
    pub fn spilled_runs(&self) -> usize {
        self.spill.as_ref().map_or(0, |s| s.runs.len())
    }

    /// Bytes currently held by the scratch file.
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.bytes)
    }

    /// Largest `(machine, domain)` raw ids pushed, or `None` when empty.
    pub fn max_ids(&self) -> Option<(u32, u32)> {
        if self.is_empty() {
            None
        } else {
            Some((self.max_machine, self.max_domain))
        }
    }

    /// Records one query observation. Never fails: if the scratch disk is
    /// unusable the sealed run stays resident in memory instead.
    pub fn push(&mut self, machine: MachineId, domain: DomainId) {
        if self.current.len() >= self.capacity {
            self.seal();
        }
        self.current.push((machine, domain));
        self.observations += 1;
        self.max_machine = self.max_machine.max(machine.0);
        self.max_domain = self.max_domain.max(domain.0);
    }

    /// Records a batch of observations (see [`push`](Self::push)).
    pub fn extend<I: IntoIterator<Item = (MachineId, DomainId)>>(&mut self, pairs: I) {
        for (m, d) in pairs {
            self.push(m, d);
        }
    }

    /// Drops all accumulated edges (and the scratch file), keeping the
    /// run capacity and the current buffer's allocation for reuse.
    pub fn clear(&mut self) {
        self.current.clear();
        self.resident.clear();
        self.spill = None;
        self.observations = 0;
        self.max_machine = 0;
        self.max_domain = 0;
    }

    /// Sorts and dedups the open run, then moves it out of RAM (spill
    /// file first, resident list as the no-disk fallback).
    fn seal(&mut self) {
        self.current.sort_unstable();
        self.current.dedup();
        if self.current.is_empty() {
            return;
        }
        match self.try_spill_current() {
            Ok(()) => self.current.clear(),
            Err(_) => {
                let full = std::mem::take(&mut self.current);
                // segugio-lint: allow(H4, amortized: seal() runs once per filled run, not per push)
                self.current = Vec::with_capacity(full.capacity());
                self.resident.push(full);
            }
        }
    }

    /// Appends the (sorted, deduped) open run to the scratch file.
    fn try_spill_current(&mut self) -> io::Result<()> {
        if self.spill.is_none() {
            self.spill = Some(Spill {
                file: create_scratch_file()?,
                // segugio-lint: allow(H4, empty Vec::new is lazy; the spill file itself is created once)
                runs: Vec::new(),
                bytes: 0,
            });
        }
        // The `?` early-returns leave `bytes`/`runs` unrecorded, so a torn
        // append is overwritten by the next successful one.
        let Some(spill) = self.spill.as_mut() else {
            return Err(io::Error::other("spill state vanished"));
        };
        spill.file.seek(SeekFrom::Start(spill.bytes))?;
        // segugio-lint: allow(H4, amortized: one staging buffer per spill, and spills happen once per filled run)
        let mut buf = Vec::with_capacity(PAIR_BYTES * REFILL_PAIRS.min(self.current.len()));
        for chunk in self.current.chunks(REFILL_PAIRS) {
            buf.clear();
            for &(m, d) in chunk {
                buf.extend_from_slice(&m.0.to_le_bytes());
                buf.extend_from_slice(&d.0.to_le_bytes());
            }
            spill.file.write_all(&buf)?;
        }
        spill.runs.push(SpilledRun {
            offset: spill.bytes,
            pairs: self.current.len() as u64,
        });
        spill.bytes += (self.current.len() * PAIR_BYTES) as u64;
        Ok(())
    }

    /// Streams the merged, globally deduplicated edge list in ascending
    /// `(machine, domain)` order — the exact order and multiplicity
    /// [`GraphBuilder::build`](crate::GraphBuilder::build) produces after
    /// its own sort+dedup.
    ///
    /// The accumulator is not consumed; the stream can be replayed (the
    /// counting-sort builder runs two passes).
    pub fn for_each_merged<F>(&self, mut f: F) -> io::Result<()>
    where
        F: FnMut(MachineId, DomainId),
    {
        // Sort a copy of the open run so replay leaves `self` untouched.
        let mut tail = Vec::with_capacity(self.current.len());
        tail.extend_from_slice(&self.current);
        tail.sort_unstable();
        tail.dedup();

        let mut sources: Vec<MergeSource<'_>> = Vec::with_capacity(self.sealed_runs() + 1);
        for run in &self.resident {
            sources.push(MergeSource::resident(run));
        }
        if let Some(spill) = &self.spill {
            for run in &spill.runs {
                sources.push(MergeSource::spilled(&spill.file, *run));
            }
        }
        sources.push(MergeSource::resident(&tail));

        // Min-heap of (next pair, source index); sources are individually
        // sorted and deduped, so global dedup is a compare with the last
        // emitted pair.
        let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> =
            BinaryHeap::with_capacity(sources.len());
        for (i, src) in sources.iter_mut().enumerate() {
            if let Some(pair) = src.next()? {
                heap.push(Reverse((pair, i)));
            }
        }
        let mut last: Option<(u32, u32)> = None;
        while let Some(Reverse((pair, i))) = heap.pop() {
            if last != Some(pair) {
                f(MachineId(pair.0), DomainId(pair.1));
                last = Some(pair);
            }
            if let Some(next) = sources[i].next()? {
                heap.push(Reverse((next, i)));
            }
        }
        Ok(())
    }

    /// Collects the merged stream into one `Vec` — the exact edge list the
    /// in-memory builder would have sorted. Intended for tests and small
    /// days; at paper scale, stream with
    /// [`for_each_merged`](Self::for_each_merged) instead.
    pub fn collect_merged(&self) -> io::Result<Vec<(MachineId, DomainId)>> {
        let mut out = Vec::new();
        self.for_each_merged(|m, d| out.push((m, d)))?;
        Ok(out)
    }

    /// Copies the accumulated state, duplicating the scratch file.
    ///
    /// Unlike [`Clone`], a scratch-disk failure is surfaced instead of
    /// panicking.
    pub fn try_clone(&self) -> io::Result<Self> {
        let spill = match &self.spill {
            None => None,
            Some(spill) => {
                let mut file = create_scratch_file()?;
                let mut src = &spill.file;
                src.seek(SeekFrom::Start(0))?;
                let copied = io::copy(&mut src.take(spill.bytes), &mut file)?;
                if copied != spill.bytes {
                    return Err(io::Error::other("scratch file truncated during clone"));
                }
                Some(Spill {
                    file,
                    runs: spill.runs.clone(),
                    bytes: spill.bytes,
                })
            }
        };
        Ok(EdgeRuns {
            capacity: self.capacity,
            current: self.current.clone(),
            resident: self.resident.clone(),
            spill,
            observations: self.observations,
            max_machine: self.max_machine,
            max_domain: self.max_domain,
        })
    }
}

impl Default for EdgeRuns {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for EdgeRuns {
    fn clone(&self) -> Self {
        match self.try_clone() {
            Ok(copy) => copy,
            Err(err) => {
                // segugio-lint: allow(C1, Clone cannot surface io errors; failing to copy the scratch file means the scratch disk died mid-operation)
                panic!("cloning spilled edge runs: {err}")
            }
        }
    }
}

impl std::fmt::Debug for EdgeRuns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeRuns")
            .field("capacity", &self.capacity)
            .field("observations", &self.observations)
            .field("open_pairs", &self.current.len())
            .field("resident_runs", &self.resident.len())
            .field("spilled_runs", &self.spilled_runs())
            .field("spilled_bytes", &self.spilled_bytes())
            .finish()
    }
}

/// Two accumulators are equal when they hold the same merged edge set
/// (run boundaries and spill placement are storage details). Replay
/// errors compare unequal rather than panicking.
impl PartialEq for EdgeRuns {
    fn eq(&self, other: &Self) -> bool {
        if self.observations != other.observations {
            return false;
        }
        match (self.collect_merged(), other.collect_merged()) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    }
}

/// Creates an unlinked (anonymous) scratch file in the system temp
/// directory. The name embeds the process id and a process-global
/// sequence number; `create_new` guards against collisions with leftovers
/// from other processes, retrying on the next sequence number.
fn create_scratch_file() -> io::Result<File> {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut last_err = io::Error::other("no scratch-file attempt made");
    for _ in 0..16 {
        let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        // segugio-lint: allow(H4, cold path: at most one scratch file per spill state, 16 bounded retries)
        let path = dir.join(format!("segugio-edge-runs-{pid}-{seq}.bin"));
        match OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(file) => {
                // Unlink immediately: the kernel keeps the data reachable
                // through the open descriptor and reclaims it on drop.
                let _ = std::fs::remove_file(&path);
                return Ok(file);
            }
            Err(err) if err.kind() == io::ErrorKind::AlreadyExists => last_err = err,
            Err(err) => return Err(err),
        }
    }
    Err(last_err)
}

/// One cursor of the k-way merge: either a resident slice or a buffered
/// window into a spilled run.
enum MergeSource<'a> {
    Resident {
        rest: &'a [(MachineId, DomainId)],
    },
    Spilled {
        file: &'a File,
        /// Byte offset of the next unread pair in the file.
        next_offset: u64,
        /// Pairs not yet handed out (buffered ones included).
        remaining: u64,
        buf: Vec<u8>,
        /// Read position within `buf`.
        pos: usize,
    },
}

impl<'a> MergeSource<'a> {
    fn resident(run: &'a [(MachineId, DomainId)]) -> Self {
        MergeSource::Resident { rest: run }
    }

    fn spilled(file: &'a File, run: SpilledRun) -> Self {
        MergeSource::Spilled {
            file,
            next_offset: run.offset,
            remaining: run.pairs,
            // segugio-lint: allow(H4, empty Vec::new is lazy; the refill path sizes it once on first use)
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next pair of this source, or `None` when exhausted.
    fn next(&mut self) -> io::Result<Option<(u32, u32)>> {
        match self {
            MergeSource::Resident { rest } => match rest.split_first() {
                None => Ok(None),
                Some((&(m, d), tail)) => {
                    *rest = tail;
                    Ok(Some((m.0, d.0)))
                }
            },
            MergeSource::Spilled {
                file,
                next_offset,
                remaining,
                buf,
                pos,
            } => {
                if *pos >= buf.len() {
                    if *remaining == 0 {
                        return Ok(None);
                    }
                    let pairs = (*remaining).min(REFILL_PAIRS as u64) as usize;
                    buf.resize(pairs * PAIR_BYTES, 0);
                    let mut at = *file;
                    at.seek(SeekFrom::Start(*next_offset))?;
                    at.read_exact(buf)?;
                    *next_offset += buf.len() as u64;
                    *remaining -= pairs as u64;
                    *pos = 0;
                }
                let m =
                    u32::from_le_bytes([buf[*pos], buf[*pos + 1], buf[*pos + 2], buf[*pos + 3]]);
                let d = u32::from_le_bytes([
                    buf[*pos + 4],
                    buf[*pos + 5],
                    buf[*pos + 6],
                    buf[*pos + 7],
                ]);
                *pos += PAIR_BYTES;
                Ok(Some((m, d)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(m: u32, d: u32) -> (MachineId, DomainId) {
        (MachineId(m), DomainId(d))
    }

    /// The reference semantics: sort + dedup of everything pushed.
    fn reference(pairs: &[(MachineId, DomainId)]) -> Vec<(MachineId, DomainId)> {
        let mut all = pairs.to_vec();
        all.sort_unstable();
        all.dedup();
        all
    }

    #[test]
    fn empty_runs_merge_to_nothing() {
        let runs = EdgeRuns::new();
        assert!(runs.is_empty());
        assert_eq!(runs.max_ids(), None);
        assert_eq!(runs.collect_merged().expect("merge"), vec![]);
    }

    #[test]
    fn single_run_sorts_and_dedups() {
        let mut runs = EdgeRuns::new();
        let pushed = [pair(3, 1), pair(1, 2), pair(3, 1), pair(1, 1), pair(1, 2)];
        runs.extend(pushed);
        assert_eq!(runs.observations(), 5);
        assert_eq!(runs.sealed_runs(), 0, "capacity not reached");
        assert_eq!(runs.collect_merged().expect("merge"), reference(&pushed));
        assert_eq!(runs.max_ids(), Some((3, 2)));
    }

    #[test]
    fn tiny_capacity_forces_spill_and_merges_identically() {
        let mut runs = EdgeRuns::with_run_capacity(4);
        // Deterministic LCG so duplicates appear within and across runs.
        let mut state = 1u64;
        let mut pushed = Vec::new();
        for _ in 0..300 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let m = ((state >> 33) % 17) as u32;
            let d = ((state >> 12) % 23) as u32;
            pushed.push(pair(m, d));
        }
        runs.extend(pushed.iter().copied());
        assert!(
            runs.spilled_runs() >= 2 || runs.sealed_runs() >= 2,
            "300 pushes at capacity 4 must seal many runs: {runs:?}"
        );
        if runs.spilled_runs() > 0 {
            assert_eq!(
                runs.spilled_bytes(),
                (runs
                    .spill
                    .as_ref()
                    .map_or(0, |s| s.runs.iter().map(|r| r.pairs).sum::<u64>()))
                    * PAIR_BYTES as u64
            );
        }
        assert_eq!(runs.collect_merged().expect("merge"), reference(&pushed));
        // Replay must be repeatable (two-pass consumers).
        assert_eq!(runs.collect_merged().expect("merge"), reference(&pushed));
    }

    #[test]
    fn clear_resets_and_accumulator_is_reusable() {
        let mut runs = EdgeRuns::with_run_capacity(2);
        runs.extend([pair(5, 5), pair(4, 4), pair(3, 3)]);
        assert!(runs.sealed_runs() >= 1);
        runs.clear();
        assert!(runs.is_empty());
        assert_eq!(runs.max_ids(), None);
        assert_eq!(runs.collect_merged().expect("merge"), vec![]);
        runs.extend([pair(2, 9), pair(2, 9), pair(1, 8)]);
        assert_eq!(
            runs.collect_merged().expect("merge"),
            vec![pair(1, 8), pair(2, 9)]
        );
    }

    #[test]
    fn clone_duplicates_spilled_state() {
        let mut runs = EdgeRuns::with_run_capacity(3);
        let pushed: Vec<_> = (0..40u32).map(|i| pair(i % 7, i % 11)).collect();
        runs.extend(pushed.iter().copied());
        assert!(runs.spilled_runs() > 0, "spill path must engage: {runs:?}");
        let copy = runs.clone();
        assert_eq!(copy.collect_merged().expect("merge"), reference(&pushed));
        assert_eq!(copy, runs);
        // Diverging after the clone keeps the copies independent.
        runs.push(MachineId(100), DomainId(100));
        assert_ne!(copy, runs);
    }
}
