//! The compact bipartite graph representation.

use segugio_model::{Day, DomainId, E2ldId, Ipv4, Label, MachineId};

/// Internal dense index of a machine node within one [`BehaviorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineIdx(pub u32);

impl MachineIdx {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal dense index of a domain node within one [`BehaviorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainIdx(pub u32);

impl DomainIdx {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One day of "who is querying what", in CSR form in both directions, with
/// domain annotations and node labels.
///
/// Build with [`GraphBuilder`](crate::GraphBuilder); label with
/// [`labeling::apply_seed_labels`](crate::labeling::apply_seed_labels);
/// prune with [`BehaviorGraph::prune`].
#[derive(Debug, Clone)]
pub struct BehaviorGraph {
    pub(crate) day: Day,
    // External identities, one per internal index.
    pub(crate) machines: Vec<MachineId>,
    pub(crate) domains: Vec<DomainId>,
    // Domain annotations. The resolved-IP sets live in one flat pool
    // (`ip_pool`) with per-domain segment boundaries in `ip_off` — the
    // same offsets-into-flat-storage shape as the CSR adjacency, so a
    // million-domain graph costs two allocations here instead of one
    // boxed slice per domain.
    pub(crate) domain_e2ld: Vec<E2ldId>,
    pub(crate) ip_off: Vec<u32>,
    pub(crate) ip_pool: Vec<Ipv4>,
    // CSR adjacency, machine -> domains.
    pub(crate) m_off: Vec<u32>,
    pub(crate) m_adj: Vec<u32>,
    // CSR adjacency, domain -> machines.
    pub(crate) d_off: Vec<u32>,
    pub(crate) d_adj: Vec<u32>,
    // Labels.
    pub(crate) domain_labels: Vec<Label>,
    pub(crate) machine_labels: Vec<Label>,
    /// Per machine: number of adjacent domains currently labeled malware.
    pub(crate) machine_malware_degree: Vec<u32>,
}

impl BehaviorGraph {
    /// The observation day this graph summarizes.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Number of machine nodes.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Number of domain nodes.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.m_adj.len()
    }

    /// Iterates over all machine indices.
    pub fn machine_indices(&self) -> impl Iterator<Item = MachineIdx> {
        (0..self.machines.len() as u32).map(MachineIdx)
    }

    /// Iterates over all domain indices.
    pub fn domain_indices(&self) -> impl Iterator<Item = DomainIdx> {
        (0..self.domains.len() as u32).map(DomainIdx)
    }

    /// The external id of machine `m`.
    pub fn machine_id(&self, m: MachineIdx) -> MachineId {
        self.machines[m.index()]
    }

    /// The external id of domain `d`.
    pub fn domain_id(&self, d: DomainIdx) -> DomainId {
        self.domains[d.index()]
    }

    /// Finds the internal index of an external domain id, if present.
    pub fn domain_idx(&self, id: DomainId) -> Option<DomainIdx> {
        self.domains
            .binary_search(&id)
            .ok()
            .map(|i| DomainIdx(i as u32))
    }

    /// Finds the internal index of an external machine id, if present.
    pub fn machine_idx(&self, id: MachineId) -> Option<MachineIdx> {
        self.machines
            .binary_search(&id)
            .ok()
            .map(|i| MachineIdx(i as u32))
    }

    /// The e2LD annotation of domain `d`.
    pub fn domain_e2ld(&self, d: DomainIdx) -> E2ldId {
        self.domain_e2ld[d.index()]
    }

    /// The resolved-IP annotation of domain `d` (the IPs it mapped to during
    /// the observation day).
    pub fn domain_ips(&self, d: DomainIdx) -> &[Ipv4] {
        let lo = self.ip_off[d.index()] as usize;
        let hi = self.ip_off[d.index() + 1] as usize;
        &self.ip_pool[lo..hi]
    }

    /// The domains queried by machine `m`.
    pub fn domains_of(&self, m: MachineIdx) -> impl Iterator<Item = DomainIdx> + '_ {
        let lo = self.m_off[m.index()] as usize;
        let hi = self.m_off[m.index() + 1] as usize;
        self.m_adj[lo..hi].iter().map(|&d| DomainIdx(d))
    }

    /// The machines that queried domain `d`.
    pub fn machines_of(&self, d: DomainIdx) -> impl Iterator<Item = MachineIdx> + '_ {
        let lo = self.d_off[d.index()] as usize;
        let hi = self.d_off[d.index() + 1] as usize;
        self.d_adj[lo..hi].iter().map(|&m| MachineIdx(m))
    }

    /// Degree of machine `m` (number of distinct domains it queried).
    pub fn machine_degree(&self, m: MachineIdx) -> usize {
        (self.m_off[m.index() + 1] - self.m_off[m.index()]) as usize
    }

    /// Degree of domain `d` (number of distinct machines that queried it).
    pub fn domain_degree(&self, d: DomainIdx) -> usize {
        (self.d_off[d.index() + 1] - self.d_off[d.index()]) as usize
    }

    /// The current label of domain `d`.
    pub fn domain_label(&self, d: DomainIdx) -> Label {
        self.domain_labels[d.index()]
    }

    /// The current label of machine `m`.
    pub fn machine_label(&self, m: MachineIdx) -> Label {
        self.machine_labels[m.index()]
    }

    /// Number of adjacent known-malware domains for machine `m`.
    ///
    /// This is the quantity that makes label hiding O(degree): a machine
    /// labeled malware *only because of* a single blacklisted domain `d`
    /// reverts to unknown when `d`'s label is hidden.
    pub fn machine_malware_degree(&self, m: MachineIdx) -> u32 {
        self.machine_malware_degree[m.index()]
    }

    /// Counts domains per label, as `(malware, benign, unknown)`.
    pub fn domain_label_counts(&self) -> (usize, usize, usize) {
        label_counts(&self.domain_labels)
    }

    /// Counts machines per label, as `(malware, benign, unknown)`.
    pub fn machine_label_counts(&self) -> (usize, usize, usize) {
        label_counts(&self.machine_labels)
    }
}

fn label_counts(labels: &[Label]) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for l in labels {
        match l {
            Label::Malware => counts.0 += 1,
            Label::Benign => counts.1 += 1,
            Label::Unknown => counts.2 += 1,
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use segugio_model::{Day, DomainId, E2ldId, MachineId};

    #[test]
    fn adjacency_round_trip() {
        let mut b = GraphBuilder::new(Day(0));
        b.add_query(MachineId(10), DomainId(100));
        b.add_query(MachineId(10), DomainId(200));
        b.add_query(MachineId(20), DomainId(200));
        b.set_e2ld(DomainId(100), E2ldId(1));
        b.set_e2ld(DomainId(200), E2ldId(2));
        let g = b.build();

        assert_eq!(g.machine_count(), 2);
        assert_eq!(g.domain_count(), 2);
        assert_eq!(g.edge_count(), 3);

        let m10 = g.machine_idx(MachineId(10)).unwrap();
        let d200 = g.domain_idx(DomainId(200)).unwrap();
        assert_eq!(g.machine_degree(m10), 2);
        assert_eq!(g.domain_degree(d200), 2);
        let queried: Vec<_> = g.domains_of(m10).map(|d| g.domain_id(d)).collect();
        assert_eq!(queried, vec![DomainId(100), DomainId(200)]);
        let queriers: Vec<_> = g.machines_of(d200).map(|m| g.machine_id(m)).collect();
        assert_eq!(queriers, vec![MachineId(10), MachineId(20)]);
    }
}
