//! Structural validation of the CSR bipartite representation.
//!
//! [`BehaviorGraph::validate`] checks every representation invariant the
//! rest of the crate relies on — sorted node id vectors, well-formed CSR
//! offset arrays, in-bounds sorted adjacency, edge symmetry between the two
//! directions, and consistent annotation/label vector lengths. The builder
//! runs it under `debug_assertions` after every build, and the property
//! tests run it against arbitrary inputs; production paths can call it
//! after deserializing or hand-assembling a graph.

use segugio_model::Label;

use crate::graph::BehaviorGraph;

impl BehaviorGraph {
    /// Checks every structural invariant of the representation.
    ///
    /// Verified invariants:
    ///
    /// - `machines` and `domains` are strictly ascending (binary-search
    ///   lookup and dense-index assignment depend on this);
    /// - every annotation vector (`domain_e2ld`, `domain_labels`,
    ///   `machine_labels`, `machine_malware_degree`) has exactly one entry
    ///   per node, and the flat IP pool offsets (`ip_off`) have `n + 1`
    ///   nondecreasing entries starting at 0 and ending at the pool length;
    /// - both CSR offset arrays have `n + 1` entries, start at 0, are
    ///   nondecreasing, and end at the edge count;
    /// - both adjacency arrays have the same length (each edge appears in
    ///   both directions), all entries are in bounds, and each node's
    ///   neighbor list is strictly ascending (sorted, duplicate-free);
    /// - the two directions describe the same edge set: every `(m, d)` edge
    ///   of the machine CSR is present in domain `d`'s machine list;
    /// - `machine_malware_degree[m]` equals the number of `m`'s neighbors
    ///   currently labeled [`Label::Malware`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n_m = self.machines.len();
        let n_d = self.domains.len();

        check_strictly_ascending(&self.machines, "machines")?;
        check_strictly_ascending(&self.domains, "domains")?;

        check_len("domain_e2ld", self.domain_e2ld.len(), n_d)?;
        check_len("ip_off", self.ip_off.len(), n_d + 1)?;
        if self.ip_off.first() != Some(&0) {
            // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
            return Err("ip_off must start at 0".to_owned());
        }
        if self.ip_off.windows(2).any(|w| w[0] > w[1]) {
            // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
            return Err("ip_off offsets decrease".to_owned());
        }
        if self.ip_off.last().map(|&o| o as usize) != Some(self.ip_pool.len()) {
            return Err(format!(
                "last ip_off {:?} != ip_pool length {}",
                self.ip_off.last(),
                self.ip_pool.len()
            ));
        }
        check_len("domain_labels", self.domain_labels.len(), n_d)?;
        check_len("machine_labels", self.machine_labels.len(), n_m)?;
        check_len(
            "machine_malware_degree",
            self.machine_malware_degree.len(),
            n_m,
        )?;

        if self.m_adj.len() != self.d_adj.len() {
            return Err(format!(
                "edge-count asymmetry: {} machine-side edges vs {} domain-side edges",
                self.m_adj.len(),
                self.d_adj.len()
            ));
        }
        check_csr("m_off/m_adj", &self.m_off, &self.m_adj, n_m, n_d)?;
        check_csr("d_off/d_adj", &self.d_off, &self.d_adj, n_d, n_m)?;

        // Edge symmetry: each machine-side edge must exist on the domain
        // side. Both adjacency arrays have equal length and per-node lists
        // are strictly ascending, so one-directional containment implies
        // the edge sets are identical.
        for mi in 0..n_m {
            let lo = self.m_off[mi] as usize;
            let hi = self.m_off[mi + 1] as usize;
            for &di in &self.m_adj[lo..hi] {
                let d_lo = self.d_off[di as usize] as usize;
                let d_hi = self.d_off[di as usize + 1] as usize;
                if self.d_adj[d_lo..d_hi].binary_search(&u32_from(mi)).is_err() {
                    // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
                    return Err(format!(
                        "edge asymmetry: machine {mi} -> domain {di} has no reverse edge"
                    ));
                }
            }
        }

        // Malware-degree cache consistency.
        for mi in 0..n_m {
            let lo = self.m_off[mi] as usize;
            let hi = self.m_off[mi + 1] as usize;
            let actual = self.m_adj[lo..hi]
                .iter()
                .filter(|&&di| self.domain_labels[di as usize] == Label::Malware)
                .count();
            let cached = self.machine_malware_degree[mi] as usize;
            if cached != actual {
                // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
                return Err(format!(
                    "machine {mi}: cached malware degree {cached} != actual {actual}"
                ));
            }
        }

        Ok(())
    }
}

/// `usize` node index to the `u32` stored in adjacency arrays. Node counts
/// are bounded by the `u32` id space by construction; saturate rather than
/// panic if that is ever violated (the comparison will then fail loudly).
fn u32_from(i: usize) -> u32 {
    u32::try_from(i).unwrap_or(u32::MAX)
}

fn check_len(name: &str, got: usize, want: usize) -> Result<(), String> {
    if got != want {
        return Err(format!("{name} has {got} entries, expected {want}"));
    }
    Ok(())
}

fn check_strictly_ascending<T: Ord + Copy + std::fmt::Debug>(
    xs: &[T],
    name: &str,
) -> Result<(), String> {
    for w in xs.windows(2) {
        if w[0] >= w[1] {
            // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
            return Err(format!(
                "{name} not strictly ascending: {:?} then {:?}",
                w[0], w[1]
            ));
        }
    }
    Ok(())
}

/// Checks one CSR direction: offsets shape, bounds, and per-node ordering.
fn check_csr(
    name: &str,
    off: &[u32],
    adj: &[u32],
    n_nodes: usize,
    n_other: usize,
) -> Result<(), String> {
    if off.len() != n_nodes + 1 {
        return Err(format!(
            "{name}: offset array has {} entries, expected {}",
            off.len(),
            n_nodes + 1
        ));
    }
    if off.first() != Some(&0) {
        return Err(format!("{name}: offsets must start at 0"));
    }
    if off.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{name}: offsets decrease"));
    }
    if off.last().map(|&o| o as usize) != Some(adj.len()) {
        return Err(format!(
            "{name}: last offset {:?} != adjacency length {}",
            off.last(),
            adj.len()
        ));
    }
    for node in 0..n_nodes {
        let lo = off[node] as usize;
        let hi = off[node + 1] as usize;
        let list = &adj[lo..hi];
        if let Some(&bad) = list.iter().find(|&&x| x as usize >= n_other) {
            // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
            return Err(format!(
                "{name}: node {node} has out-of-bounds neighbor {bad} (only {n_other} exist)"
            ));
        }
        if list.windows(2).any(|w| w[0] >= w[1]) {
            // segugio-lint: allow(H4, error path: allocates only when the graph is corrupt, never on a clean day)
            return Err(format!(
                "{name}: node {node} adjacency not strictly ascending"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::graph::BehaviorGraph;
    use segugio_model::{Day, DomainId, Label, MachineId};

    fn sample() -> BehaviorGraph {
        let mut b = GraphBuilder::new(Day(3));
        b.add_query(MachineId(10), DomainId(100));
        b.add_query(MachineId(10), DomainId(200));
        b.add_query(MachineId(20), DomainId(200));
        b.add_query(MachineId(30), DomainId(100));
        b.build()
    }

    #[test]
    fn built_graphs_validate() {
        assert_eq!(sample().validate(), Ok(()));
        assert_eq!(GraphBuilder::new(Day(0)).build().validate(), Ok(()));
    }

    #[test]
    fn detects_unsorted_node_ids() {
        let mut g = sample();
        g.machines.swap(0, 1);
        let err = g.validate().unwrap_err();
        assert!(err.contains("machines not strictly ascending"), "{err}");
    }

    #[test]
    fn detects_annotation_length_mismatch() {
        let mut g = sample();
        g.domain_e2ld.pop();
        let err = g.validate().unwrap_err();
        assert!(err.contains("domain_e2ld"), "{err}");
    }

    #[test]
    fn detects_ip_pool_corruption() {
        let mut g = sample();
        g.ip_off.pop();
        let err = g.validate().unwrap_err();
        assert!(err.contains("ip_off"), "{err}");

        let mut g = sample();
        *g.ip_off.last_mut().unwrap() += 1;
        let err = g.validate().unwrap_err();
        assert!(err.contains("ip_pool"), "{err}");
    }

    #[test]
    fn detects_offset_corruption() {
        let mut g = sample();
        g.m_off[1] = g.m_off[2] + 1;
        let err = g.validate().unwrap_err();
        assert!(err.contains("offsets"), "{err}");

        let mut g = sample();
        *g.d_off.last_mut().unwrap() += 1;
        let err = g.validate().unwrap_err();
        assert!(err.contains("last offset"), "{err}");
    }

    #[test]
    fn detects_out_of_bounds_neighbor() {
        let mut g = sample();
        g.m_adj[0] = 99;
        let err = g.validate().unwrap_err();
        assert!(err.contains("out-of-bounds"), "{err}");
    }

    #[test]
    fn detects_unsorted_adjacency() {
        let mut g = sample();
        // Machine 10 queried domains {100, 200}; reverse its list.
        g.m_adj.swap(0, 1);
        let err = g.validate().unwrap_err();
        assert!(err.contains("not strictly ascending"), "{err}");
    }

    #[test]
    fn detects_edge_asymmetry() {
        let mut g = sample();
        // Rewire machine 30's single edge from domain 100 to domain 200
        // without touching the domain-side CSR. Lengths still agree.
        let last = g.m_adj.len() - 1;
        g.m_adj[last] = 1;
        // Keep the domain-side edge count identical (it already is), so
        // only the symmetry check can catch this.
        let err = g.validate().unwrap_err();
        assert!(err.contains("asymmetry"), "{err}");
    }

    #[test]
    fn detects_stale_malware_degree() {
        let mut g = sample();
        g.domain_labels[0] = Label::Malware;
        let err = g.validate().unwrap_err();
        assert!(err.contains("malware degree"), "{err}");
    }
}
