//! Counting global allocator for steady-state allocation audits.
//!
//! [`CountingAlloc`] wraps [`System`] and tallies every heap operation in
//! four process-global counters: allocation count, free count, cumulative
//! allocated bytes, and the high-water mark of live bytes. A bench
//! installs it with `#[global_allocator]`, brackets each phase of a run
//! with [`measure`], and records the per-phase [`PhaseCounts`] deltas —
//! `crates/bench/benches/alloc.rs` writes them into `BENCH_alloc.json`,
//! which `cargo xtask audit` ratchets against
//! `crates/xtask/alloc-budget.toml`.
//!
//! The probe is deliberately dependency-free: it must be linkable from
//! any bench without dragging the engine in, and its own bookkeeping
//! never allocates (plain atomics only), so bracketing a region cannot
//! perturb the counts it reports.
//!
//! Counter updates use `Relaxed` ordering. The counters are independent
//! monotone tallies — no update is ever lost, and no rule orders one
//! counter against another. Exact phase attribution additionally needs
//! the measured region to run on the bracketing thread with no
//! concurrent allocator traffic; the alloc bench guarantees that by
//! forcing scoring parallelism to one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to [`System`] and counts.
///
/// Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: segugio_alloc_probe::CountingAlloc = segugio_alloc_probe::CountingAlloc;
/// ```
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size as u64, Relaxed);
    let live = LIVE.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK.fetch_max(live, Relaxed);
}

fn on_free(size: usize) {
    FREES.fetch_add(1, Relaxed);
    LIVE.fetch_sub(size as u64, Relaxed);
}

// SAFETY: every method forwards the caller's layout/pointer to `System`
// unchanged, so `System`'s contract is met exactly when the caller met ours.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc` — forwarded unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's, forwarded unchanged.
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same contract as `System::alloc_zeroed` — forwarded unchanged.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: `layout` is the caller's, forwarded unchanged.
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: same contract as `System::dealloc` — forwarded unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_free(layout.size());
        // SAFETY: `ptr`/`layout` are the caller's, forwarded unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::realloc` — forwarded unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr`/`layout`/`new_size` are the caller's, forwarded
        // unchanged.
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // A grow-or-move counts as one free of the old block plus one
            // allocation of the new one, whatever the system allocator
            // did internally: what the budget ratchets is allocator
            // traffic, and a realloc in a hot path is exactly the
            // buffer-growth churn the discipline exists to surface.
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// A point-in-time reading of the global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Allocations since process start.
    pub allocs: u64,
    /// Frees since process start.
    pub frees: u64,
    /// Cumulative bytes allocated since process start.
    pub bytes: u64,
    /// Bytes currently live.
    pub live: u64,
    /// High-water mark of `live` since process start (or the last
    /// [`reset_peak`]).
    pub peak: u64,
}

/// Reads all counters. Never allocates.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.load(Relaxed),
        frees: FREES.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        live: LIVE.load(Relaxed),
        peak: PEAK.load(Relaxed),
    }
}

/// Resets the high-water mark to the current live-byte count, so the next
/// [`snapshot`] reads the peak *since this call*.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Relaxed), Relaxed);
}

/// Allocator traffic attributed to one measured region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseCounts {
    /// Heap allocations performed inside the region.
    pub allocs: u64,
    /// Heap frees performed inside the region.
    pub frees: u64,
    /// Bytes allocated inside the region (cumulative, not net).
    pub bytes: u64,
    /// Peak live bytes observed during the region.
    pub peak_bytes: u64,
}

/// Runs `f` and returns its result together with the allocator traffic it
/// generated.
///
/// The bracketing itself allocates nothing, so an `f` that performs zero
/// heap operations reports exactly zero — the property the steady-state
/// scoring budget asserts. Deltas are exact when no other thread touches
/// the allocator while `f` runs.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, PhaseCounts) {
    reset_peak();
    let start = snapshot();
    let out = f();
    let end = snapshot();
    (
        out,
        PhaseCounts {
            allocs: end.allocs - start.allocs,
            frees: end.frees - start.frees,
            bytes: end.bytes - start.bytes,
            peak_bytes: end.peak,
        },
    )
}

#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    // The unit tests share the process-global counters with the test
    // harness, so they assert lower bounds and invariants; the exact-zero
    // steady-state property is asserted in crates/bench/benches/alloc.rs,
    // where the probe owns the whole process.

    #[test]
    fn measure_counts_an_allocation_and_its_free() {
        let (_, c) = measure(|| {
            let v: Vec<u8> = Vec::with_capacity(4096);
            drop(v);
        });
        assert!(c.allocs >= 1, "allocs {}", c.allocs);
        assert!(c.frees >= 1, "frees {}", c.frees);
        assert!(c.bytes >= 4096, "bytes {}", c.bytes);
        assert!(c.peak_bytes >= 4096, "peak {}", c.peak_bytes);
    }

    #[test]
    fn leaked_allocation_raises_live() {
        let before = snapshot();
        let v: Vec<u8> = Vec::with_capacity(1024);
        let after = snapshot();
        assert!(after.live >= before.live + 1024);
        drop(v);
    }

    #[test]
    fn realloc_growth_is_counted_as_traffic() {
        let (_, c) = measure(|| {
            let mut v: Vec<u8> = Vec::with_capacity(16);
            // Force at least one grow-in-place-or-move.
            for i in 0..4096u32 {
                v.push(i as u8);
            }
            drop(v);
        });
        assert!(c.allocs >= 2, "growth must re-allocate: {}", c.allocs);
        assert!(c.bytes >= 4096 + 16, "bytes {}", c.bytes);
    }

    #[test]
    fn peak_resets_to_live() {
        let held: Vec<u8> = Vec::with_capacity(2048);
        let (_, c) = measure(|| ());
        // The empty region's peak is whatever was live going in — never
        // less than the buffer we are still holding.
        assert!(c.peak_bytes >= 2048, "peak {}", c.peak_bytes);
        drop(held);
    }

    #[test]
    fn snapshot_is_monotone_in_traffic() {
        let a = snapshot();
        let v: Vec<u64> = (0..128).collect();
        let b = snapshot();
        assert!(b.allocs > a.allocs);
        assert!(b.bytes > a.bytes);
        assert!(b.frees >= a.frees);
        drop(v);
    }
}
