//! Property-based tests for the passive-DNS substrate, checked against
//! naive reference implementations.

use std::collections::HashSet;

use proptest::prelude::*;

use segugio_model::{Day, DayWindow, DomainId, E2ldId, Ipv4, Label};
use segugio_pdns::{AbuseIndex, ActivityStore, PassiveDns};

proptest! {
    /// ActivityStore window counts match a naive set-based model.
    #[test]
    fn activity_matches_naive(
        events in proptest::collection::vec((0u32..5, 0u32..40), 0..200),
        probe_day in 0u32..45,
        n in 1u32..20,
    ) {
        let mut store = ActivityStore::new();
        let mut naive: HashSet<(u32, u32)> = HashSet::new();
        for &(dom, day) in &events {
            store.record(DomainId(dom), E2ldId(dom), Day(day));
            naive.insert((dom, day));
        }
        for dom in 0..5u32 {
            let window = Day(probe_day).lookback(n);
            let expected = window
                .iter()
                .filter(|d| naive.contains(&(dom, d.0)))
                .count() as u32;
            prop_assert_eq!(store.fqd_active_days(DomainId(dom), window), expected);
            prop_assert_eq!(store.e2ld_active_days(E2ldId(dom), window), expected);

            // Naive streak.
            let mut streak = 0;
            let mut d = probe_day;
            while streak < n && naive.contains(&(dom, d)) {
                streak += 1;
                if d == 0 { break; }
                d -= 1;
            }
            prop_assert_eq!(store.fqd_streak_ending(DomainId(dom), Day(probe_day), n), streak);
        }
    }

    /// PassiveDns resolved_ips matches a naive filter, regardless of the
    /// order records arrive in.
    #[test]
    fn pdns_matches_naive(
        records in proptest::collection::vec((0u32..4, 0u8..6, 0u32..30), 0..150),
        start in 0u32..30,
        len in 0u32..30,
    ) {
        let mut pdns = PassiveDns::new();
        for &(dom, ip, day) in &records {
            pdns.record(DomainId(dom), Ipv4::from_octets(10, 0, 0, ip), Day(day));
        }
        let window = DayWindow::new(Day(start), Day(start + len));
        for dom in 0..4u32 {
            let mut expected: Vec<Ipv4> = records
                .iter()
                .filter(|&&(d, _, day)| d == dom && window.contains(Day(day)))
                .map(|&(_, ip, _)| Ipv4::from_octets(10, 0, 0, ip))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(pdns.resolved_ips(DomainId(dom), window), expected);
        }
    }

    /// AbuseIndex: an IP is a malware IP iff some malware-labeled domain
    /// resolved to it inside the window.
    #[test]
    fn abuse_index_matches_naive(
        records in proptest::collection::vec((0u32..6, 0u8..8, 0u32..20), 0..150),
        malware_mod in 2u32..5,
    ) {
        let mut pdns = PassiveDns::new();
        for &(dom, ip, day) in &records {
            pdns.record(DomainId(dom), Ipv4::from_octets(10, ip % 2, 0, ip), Day(day));
        }
        let window = DayWindow::new(Day(5), Day(15));
        let label = |d: DomainId| if d.0.is_multiple_of(malware_mod) { Label::Malware } else { Label::Unknown };
        let idx = AbuseIndex::build(&pdns, window, label);
        for ip_octet in 0..8u8 {
            let ip = Ipv4::from_octets(10, ip_octet % 2, 0, ip_octet);
            let expected_mal = records.iter().any(|&(d, i, day)| {
                i == ip_octet && window.contains(Day(day)) && label(DomainId(d)).is_malware()
            });
            prop_assert_eq!(idx.is_malware_ip(ip), expected_mal);
            let expected_unknown: HashSet<u32> = records
                .iter()
                .filter(|&&(d, i, day)| {
                    i == ip_octet && window.contains(Day(day)) && label(DomainId(d)).is_unknown()
                })
                .map(|&(d, _, _)| d)
                .collect();
            prop_assert_eq!(idx.unknown_domains_on_ip(ip), expected_unknown.len() as u32);
        }
    }
}
