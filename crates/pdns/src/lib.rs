//! Passive-DNS history and domain-activity substrate.
//!
//! The paper's deployment leans on two historical data sources that are not
//! part of the one-day behavior graph:
//!
//! 1. **Domain activity** (feature group F2): for each FQD and e2LD, the set
//!    of days on which it was actively queried, looking back `n = 14` days.
//!    [`ActivityStore`] records per-day activity as compact bitsets.
//! 2. **A large passive-DNS database** (feature group F3): five months of
//!    historical domain→IP resolutions, used to ask "was this IP (or its
//!    /24) previously pointed to by known malware-control domains?".
//!    [`PassiveDns`] stores the resolution history; [`AbuseIndex`] is the
//!    window-scoped index built from it for a given labeling.
//!
//! In the paper these stores are fed by the live ISP traffic plus a
//! commercial pDNS archive; in this reproduction they are fed by the
//! synthetic traffic generator during a warm-up period preceding the
//! evaluation days (see `segugio-traffic`).

#![warn(missing_docs)]
pub mod abuse;
pub mod activity;
pub mod rolling;
pub mod store;

pub use abuse::AbuseIndex;
pub use activity::ActivityStore;
pub use rolling::{AbuseDelta, RollingAbuseIndex};
pub use store::PassiveDns;
