//! Historical domain-to-IP resolution store.

use std::collections::BTreeMap;

use segugio_model::{Day, DayWindow, DomainId, Ipv4};

/// A passive-DNS database: the history of authoritative domain→IP
/// resolutions observed over time.
///
/// The store is append-only and day-granular, mirroring how a pDNS archive
/// accumulates. Per-domain records are kept sorted by day so window queries
/// are range scans.
///
/// # Example
///
/// ```
/// use segugio_model::{Day, DomainId, Ipv4};
/// use segugio_pdns::PassiveDns;
///
/// let mut pdns = PassiveDns::new();
/// let ip = Ipv4::from_octets(192, 0, 2, 1);
/// pdns.record(DomainId(4), ip, Day(10));
/// let ips = pdns.resolved_ips(DomainId(4), Day(12).lookback(5));
/// assert_eq!(ips, vec![ip]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PassiveDns {
    // Ordered so `records_in` yields domains deterministically.
    by_domain: BTreeMap<DomainId, Vec<(Day, Ipv4)>>,
    // Day-major view of the same records, so a rolling window can ingest or
    // evict exactly one day without touching the rest of the archive.
    by_day: BTreeMap<Day, Vec<(DomainId, Ipv4)>>,
    records: usize,
}

impl PassiveDns {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `domain` resolved to `ip` on `day`.
    ///
    /// Duplicate `(domain, ip, day)` records are collapsed.
    pub fn record(&mut self, domain: DomainId, ip: Ipv4, day: Day) {
        let entries = self.by_domain.entry(domain).or_default();
        // Fast path: appends arrive in day order from the generator.
        match entries.last() {
            Some(&last) if last == (day, ip) => return,
            Some(&(last_day, _)) if last_day <= day => entries.push((day, ip)),
            _ => {
                let pos = entries.partition_point(|&(d, i)| (d, i) < (day, ip));
                if entries.get(pos) == Some(&(day, ip)) {
                    return;
                }
                entries.insert(pos, (day, ip));
            }
        }
        self.by_day.entry(day).or_default().push((domain, ip));
        self.records += 1;
    }

    /// The per-domain records inside `window`, as a day-sorted slice.
    ///
    /// Per-domain entries are kept `(day, ip)`-sorted, so the window
    /// boundaries are found by binary search and the result borrows the
    /// store — no per-call allocation.
    pub fn records_of(&self, domain: DomainId, window: DayWindow) -> &[(Day, Ipv4)] {
        let Some(entries) = self.by_domain.get(&domain) else {
            return &[];
        };
        let lo = entries.partition_point(|&(d, _)| d < window.start());
        let hi = entries.partition_point(|&(d, _)| d < window.end());
        &entries[lo..hi]
    }

    /// Number of records for `domain` inside `window`, without materializing
    /// them.
    pub fn record_count_in(&self, domain: DomainId, window: DayWindow) -> usize {
        self.records_of(domain, window).len()
    }

    /// All `(domain, ip)` records observed on exactly `day`, duplicate-free.
    ///
    /// This is the ingest/evict unit of a rolling window index: advancing
    /// from day `d` to `d + 1` touches only the records of the entering and
    /// leaving days.
    pub fn records_on(&self, day: Day) -> &[(DomainId, Ipv4)] {
        self.by_day.get(&day).map_or(&[], Vec::as_slice)
    }

    /// All distinct IPs `domain` resolved to within `window`.
    pub fn resolved_ips(&self, domain: DomainId, window: DayWindow) -> Vec<Ipv4> {
        let mut ips: Vec<Ipv4> = self
            .records_of(domain, window)
            .iter()
            .map(|&(_, ip)| ip)
            .collect();
        ips.sort_unstable();
        ips.dedup();
        ips
    }

    /// The earliest day `domain` resolved within `window`, if any.
    ///
    /// Per-domain records are kept day-sorted, so this is a binary search of
    /// that domain's entries only — reputation systems use it to implement
    /// "history too young" reject rules cheaply.
    pub fn first_seen_in(&self, domain: DomainId, window: DayWindow) -> Option<Day> {
        self.records_of(domain, window).first().map(|&(d, _)| d)
    }

    /// Whether the store has any record for `domain`, in any window.
    ///
    /// Used by reputation baselines with a *reject option*: a domain with no
    /// pDNS history cannot be scored.
    pub fn has_history(&self, domain: DomainId) -> bool {
        self.by_domain.contains_key(&domain)
    }

    /// Iterates over `(domain, day, ip)` records restricted to `window`.
    pub fn records_in(
        &self,
        window: DayWindow,
    ) -> impl Iterator<Item = (DomainId, Day, Ipv4)> + '_ {
        self.by_domain.keys().flat_map(move |&dom| {
            self.records_of(dom, window)
                .iter()
                .map(move |&(d, ip)| (dom, d, ip))
        })
    }

    /// Total number of stored records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of distinct domains with history.
    pub fn domain_count(&self) -> usize {
        self.by_domain.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(n: u8) -> Ipv4 {
        Ipv4::from_octets(10, 0, 0, n)
    }

    #[test]
    fn record_and_query_window() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(1));
        p.record(DomainId(1), ip(2), Day(5));
        p.record(DomainId(1), ip(3), Day(20));
        let ips = p.resolved_ips(DomainId(1), segugio_model::DayWindow::new(Day(0), Day(10)));
        assert_eq!(ips, vec![ip(1), ip(2)]);
    }

    #[test]
    fn duplicates_collapse() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(3));
        p.record(DomainId(1), ip(1), Day(3));
        assert_eq!(p.len(), 1);
        // Out-of-order duplicate also collapses.
        p.record(DomainId(1), ip(9), Day(8));
        p.record(DomainId(1), ip(1), Day(3));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn out_of_order_inserts_are_sorted() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(5), Day(9));
        p.record(DomainId(1), ip(1), Day(2));
        let ips = p.resolved_ips(DomainId(1), Day(9).lookback(14));
        assert_eq!(ips, vec![ip(1), ip(5)]);
    }

    #[test]
    fn history_flag() {
        let mut p = PassiveDns::new();
        assert!(!p.has_history(DomainId(1)));
        p.record(DomainId(1), ip(1), Day(0));
        assert!(p.has_history(DomainId(1)));
    }

    #[test]
    fn first_seen_respects_window() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(8));
        p.record(DomainId(1), ip(2), Day(3));
        p.record(DomainId(1), ip(3), Day(12));
        let w = segugio_model::DayWindow::new(Day(5), Day(20));
        assert_eq!(p.first_seen_in(DomainId(1), w), Some(Day(8)));
        let all = segugio_model::DayWindow::new(Day(0), Day(20));
        assert_eq!(p.first_seen_in(DomainId(1), all), Some(Day(3)));
        assert_eq!(p.first_seen_in(DomainId(9), all), None);
        let none = segugio_model::DayWindow::new(Day(15), Day(20));
        assert_eq!(p.first_seen_in(DomainId(1), none), None);
    }

    #[test]
    fn sliced_records_match_windows() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(1));
        p.record(DomainId(1), ip(2), Day(4));
        p.record(DomainId(1), ip(3), Day(4));
        p.record(DomainId(1), ip(4), Day(9));
        let w = segugio_model::DayWindow::new(Day(2), Day(9));
        assert_eq!(
            p.records_of(DomainId(1), w),
            &[(Day(4), ip(2)), (Day(4), ip(3))]
        );
        assert_eq!(p.record_count_in(DomainId(1), w), 2);
        assert_eq!(p.record_count_in(DomainId(7), w), 0);
        assert!(p.records_of(DomainId(7), w).is_empty());
        // Empty window yields nothing.
        let empty = segugio_model::DayWindow::new(Day(4), Day(4));
        assert!(p.records_of(DomainId(1), empty).is_empty());
    }

    #[test]
    fn records_on_day_collapse_duplicates() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(3));
        p.record(DomainId(2), ip(2), Day(3));
        p.record(DomainId(1), ip(1), Day(3)); // duplicate, collapsed
        p.record(DomainId(1), ip(1), Day(4));
        let mut got = p.records_on(Day(3)).to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![(DomainId(1), ip(1)), (DomainId(2), ip(2))]);
        assert_eq!(p.records_on(Day(4)), &[(DomainId(1), ip(1))]);
        assert!(p.records_on(Day(9)).is_empty());
    }

    #[test]
    fn records_in_window() {
        let mut p = PassiveDns::new();
        p.record(DomainId(1), ip(1), Day(1));
        p.record(DomainId(2), ip(2), Day(4));
        p.record(DomainId(3), ip(3), Day(9));
        let window = segugio_model::DayWindow::new(Day(0), Day(5));
        let mut got: Vec<_> = p.records_in(window).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(DomainId(1), Day(1), ip(1)), (DomainId(2), Day(4), ip(2))]
        );
    }
}
