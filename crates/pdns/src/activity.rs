//! Per-day domain activity tracking (feature group F2 substrate).

use std::collections::HashMap;

use segugio_model::{Day, DayWindow, DomainId, E2ldId};

/// A growable bitset over day indices.
#[derive(Debug, Clone, Default)]
struct DayBitmap {
    words: Vec<u64>,
}

impl DayBitmap {
    fn set(&mut self, day: Day) {
        let (w, b) = (day.index() / 64, day.index() % 64);
        self.set_word(w, 1 << b);
    }

    /// Sets a pre-computed `(word, mask)` position — the bulk-append path
    /// hoists the day → bit translation out of its per-record loop.
    fn set_word(&mut self, w: usize, mask: u64) {
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= mask;
    }

    fn get(&self, day: Day) -> bool {
        let (w, b) = (day.index() / 64, day.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    fn count_in(&self, window: DayWindow) -> u32 {
        window.iter().filter(|&d| self.get(d)).count() as u32
    }

    /// Length of the run of consecutive active days ending at `day`,
    /// looking back at most `n` days (so the result is in `0..=n`).
    fn streak_ending(&self, day: Day, n: u32) -> u32 {
        let mut streak = 0;
        let mut d = day;
        while streak < n && self.get(d) {
            streak += 1;
            if d == Day(0) {
                break;
            }
            d = d.prev();
        }
        streak
    }
}

/// Records which days each FQD and e2LD was actively queried.
///
/// # Example
///
/// ```
/// use segugio_model::{Day, DomainId, E2ldId};
/// use segugio_pdns::ActivityStore;
///
/// let mut store = ActivityStore::new();
/// store.record(DomainId(1), E2ldId(0), Day(3));
/// store.record(DomainId(1), E2ldId(0), Day(4));
/// assert_eq!(store.fqd_active_days(DomainId(1), Day(4).lookback(14)), 2);
/// assert_eq!(store.fqd_streak_ending(DomainId(1), Day(4), 14), 2);
/// assert_eq!(store.fqd_streak_ending(DomainId(1), Day(5), 14), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivityStore {
    fqd: HashMap<DomainId, DayBitmap>,
    e2ld: HashMap<E2ldId, DayBitmap>,
}

impl ActivityStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `fqd` (whose e2LD is `e2ld`) was queried on `day`.
    pub fn record(&mut self, fqd: DomainId, e2ld: E2ldId, day: Day) {
        self.fqd.entry(fqd).or_default().set(day);
        self.e2ld.entry(e2ld).or_default().set(day);
    }

    /// Appends one whole day of activity in a single pass: every `(fqd,
    /// e2ld)` pair is marked active on `day`.
    ///
    /// Equivalent to calling [`record`](Self::record) per pair, but the
    /// day → bitmap-position translation is computed once for the batch —
    /// the natural ingest shape for an incremental day-over-day pipeline.
    pub fn append_day<I>(&mut self, day: Day, pairs: I)
    where
        I: IntoIterator<Item = (DomainId, E2ldId)>,
    {
        let (w, b) = (day.index() / 64, day.index() % 64);
        let mask = 1u64 << b;
        for (fqd, e2ld) in pairs {
            self.fqd.entry(fqd).or_default().set_word(w, mask);
            self.e2ld.entry(e2ld).or_default().set_word(w, mask);
        }
    }

    /// Whether `fqd` was seen active on `day`.
    pub fn fqd_active_on(&self, fqd: DomainId, day: Day) -> bool {
        self.fqd.get(&fqd).is_some_and(|b| b.get(day))
    }

    /// Number of days in `window` on which `fqd` was active.
    pub fn fqd_active_days(&self, fqd: DomainId, window: DayWindow) -> u32 {
        self.fqd.get(&fqd).map_or(0, |b| b.count_in(window))
    }

    /// Length of the consecutive-active-day run for `fqd` ending at `day`,
    /// capped at `n`.
    pub fn fqd_streak_ending(&self, fqd: DomainId, day: Day, n: u32) -> u32 {
        self.fqd.get(&fqd).map_or(0, |b| b.streak_ending(day, n))
    }

    /// Number of days in `window` on which the e2LD was active.
    pub fn e2ld_active_days(&self, e2ld: E2ldId, window: DayWindow) -> u32 {
        self.e2ld.get(&e2ld).map_or(0, |b| b.count_in(window))
    }

    /// Length of the consecutive-active-day run for the e2LD ending at
    /// `day`, capped at `n`.
    pub fn e2ld_streak_ending(&self, e2ld: E2ldId, day: Day, n: u32) -> u32 {
        self.e2ld.get(&e2ld).map_or(0, |b| b.streak_ending(day, n))
    }

    /// Estimates the first day `fqd` was ever seen, if any.
    pub fn fqd_first_seen(&self, fqd: DomainId) -> Option<Day> {
        let bitmap = self.fqd.get(&fqd)?;
        for (w, &word) in bitmap.words.iter().enumerate() {
            if word != 0 {
                return Some(Day((w * 64 + word.trailing_zeros() as usize) as u32));
            }
        }
        None
    }

    /// Number of FQDs with any recorded activity.
    pub fn tracked_fqds(&self) -> usize {
        self.fqd.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = DayBitmap::default();
        b.set(Day(0));
        b.set(Day(63));
        b.set(Day(64));
        assert!(b.get(Day(0)));
        assert!(b.get(Day(63)));
        assert!(b.get(Day(64)));
        assert!(!b.get(Day(1)));
        assert!(!b.get(Day(1000)));
    }

    #[test]
    fn active_days_in_window() {
        let mut s = ActivityStore::new();
        for d in [1, 2, 5, 9] {
            s.record(DomainId(0), E2ldId(0), Day(d));
        }
        assert_eq!(s.fqd_active_days(DomainId(0), Day(9).lookback(14)), 4);
        assert_eq!(s.fqd_active_days(DomainId(0), Day(9).lookback(5)), 2);
        assert_eq!(s.fqd_active_days(DomainId(1), Day(9).lookback(14)), 0);
    }

    #[test]
    fn streaks() {
        let mut s = ActivityStore::new();
        for d in [3, 4, 5, 7, 8] {
            s.record(DomainId(0), E2ldId(0), Day(d));
        }
        assert_eq!(s.fqd_streak_ending(DomainId(0), Day(5), 14), 3);
        assert_eq!(s.fqd_streak_ending(DomainId(0), Day(8), 14), 2);
        assert_eq!(s.fqd_streak_ending(DomainId(0), Day(6), 14), 0);
        // Cap at n.
        assert_eq!(s.fqd_streak_ending(DomainId(0), Day(5), 2), 2);
    }

    #[test]
    fn streak_saturates_at_epoch() {
        let mut s = ActivityStore::new();
        s.record(DomainId(0), E2ldId(0), Day(0));
        s.record(DomainId(0), E2ldId(0), Day(1));
        assert_eq!(s.fqd_streak_ending(DomainId(0), Day(1), 14), 2);
    }

    #[test]
    fn append_day_matches_per_record_path() {
        let mut bulk = ActivityStore::new();
        let mut serial = ActivityStore::new();
        for day in [Day(0), Day(63), Day(64), Day(70)] {
            let pairs = [
                (DomainId(1), E2ldId(10)),
                (DomainId(2), E2ldId(10)),
                (DomainId(3), E2ldId(30)),
            ];
            bulk.append_day(day, pairs);
            for (fqd, e2ld) in pairs {
                serial.record(fqd, e2ld, day);
            }
        }
        for d in 1..=3u32 {
            assert_eq!(
                bulk.fqd_active_days(DomainId(d), Day(70).lookback(100)),
                serial.fqd_active_days(DomainId(d), Day(70).lookback(100)),
            );
        }
        assert_eq!(
            bulk.e2ld_streak_ending(E2ldId(10), Day(64), 14),
            serial.e2ld_streak_ending(E2ldId(10), Day(64), 14),
        );
        assert_eq!(bulk.tracked_fqds(), 3);
    }

    #[test]
    fn e2ld_aggregates_across_fqds() {
        let mut s = ActivityStore::new();
        s.record(DomainId(0), E2ldId(7), Day(1));
        s.record(DomainId(1), E2ldId(7), Day(2));
        assert_eq!(s.e2ld_active_days(E2ldId(7), Day(2).lookback(14)), 2);
        assert_eq!(s.e2ld_streak_ending(E2ldId(7), Day(2), 14), 2);
    }

    #[test]
    fn first_seen() {
        let mut s = ActivityStore::new();
        s.record(DomainId(0), E2ldId(0), Day(70));
        s.record(DomainId(0), E2ldId(0), Day(65));
        assert_eq!(s.fqd_first_seen(DomainId(0)), Some(Day(65)));
        assert_eq!(s.fqd_first_seen(DomainId(9)), None);
    }
}
