//! IP-abuse index over a passive-DNS window (feature group F3 substrate).

use std::collections::{HashMap, HashSet};

use segugio_model::{DayWindow, DomainId, Ipv4, Label, Prefix24};

use crate::store::PassiveDns;

/// A window-scoped index answering the feature-group-F3 questions:
///
/// - was this IP (or its /24) pointed to by a *known malware* domain during
///   the lookback window `W`?
/// - how many *unknown* domains used this IP (or its /24) during `W`?
///
/// Built once per evaluation day from the [`PassiveDns`] store and a
/// domain-labeling function (the labels known *as of* that day — the index
/// must never peek at future ground truth).
///
/// # Example
///
/// ```
/// use segugio_model::{Day, DayWindow, DomainId, Ipv4, Label};
/// use segugio_pdns::{AbuseIndex, PassiveDns};
///
/// let mut pdns = PassiveDns::new();
/// let bad_ip = Ipv4::from_octets(203, 0, 113, 9);
/// pdns.record(DomainId(0), bad_ip, Day(3));
/// let idx = AbuseIndex::build(&pdns, DayWindow::new(Day(0), Day(10)), |d| {
///     if d == DomainId(0) { Label::Malware } else { Label::Unknown }
/// });
/// assert!(idx.is_malware_ip(bad_ip));
/// assert!(idx.is_malware_prefix(bad_ip.prefix24()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbuseIndex {
    // Visible to `rolling`, which maintains the same structures by
    // ingesting/evicting one day at a time instead of rebuilding.
    pub(crate) malware_ips: HashSet<Ipv4>,
    pub(crate) malware_prefixes: HashSet<Prefix24>,
    pub(crate) unknown_ip_domains: HashMap<Ipv4, u32>,
    pub(crate) unknown_prefix_domains: HashMap<Prefix24, u32>,
}

impl AbuseIndex {
    /// Builds the index from all pDNS records inside `window`, labeling each
    /// historical domain with `label_of`.
    pub fn build<F>(pdns: &PassiveDns, window: DayWindow, label_of: F) -> Self
    where
        F: Fn(DomainId) -> Label,
    {
        let mut idx = AbuseIndex::default();
        // Track distinct (unknown-domain, ip) pairs so counts are per-domain.
        let mut seen_unknown: HashSet<(DomainId, Ipv4)> = HashSet::new();
        for (domain, _day, ip) in pdns.records_in(window) {
            match label_of(domain) {
                Label::Malware => {
                    idx.malware_ips.insert(ip);
                    idx.malware_prefixes.insert(ip.prefix24());
                }
                Label::Unknown => {
                    if seen_unknown.insert((domain, ip)) {
                        *idx.unknown_ip_domains.entry(ip).or_insert(0) += 1;
                        *idx.unknown_prefix_domains.entry(ip.prefix24()).or_insert(0) += 1;
                    }
                }
                Label::Benign => {}
            }
        }
        idx
    }

    /// Whether `ip` was pointed to by a known malware domain in the window.
    pub fn is_malware_ip(&self, ip: Ipv4) -> bool {
        self.malware_ips.contains(&ip)
    }

    /// Whether any IP in `prefix` was pointed to by a known malware domain.
    pub fn is_malware_prefix(&self, prefix: Prefix24) -> bool {
        self.malware_prefixes.contains(&prefix)
    }

    /// Number of distinct unknown domains that used `ip` in the window.
    pub fn unknown_domains_on_ip(&self, ip: Ipv4) -> u32 {
        self.unknown_ip_domains.get(&ip).copied().unwrap_or(0)
    }

    /// Number of distinct unknown-domain/IP pairs inside `prefix`.
    pub fn unknown_domains_on_prefix(&self, prefix: Prefix24) -> u32 {
        self.unknown_prefix_domains
            .get(&prefix)
            .copied()
            .unwrap_or(0)
    }

    /// Number of IPs with malware history in the window.
    pub fn malware_ip_count(&self) -> usize {
        self.malware_ips.len()
    }

    /// Number of /24s with malware history in the window.
    pub fn malware_prefix_count(&self) -> usize {
        self.malware_prefixes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_model::Day;

    fn ip(a: u8, d: u8) -> Ipv4 {
        Ipv4::from_octets(10, a, 0, d)
    }

    fn build_sample() -> AbuseIndex {
        let mut pdns = PassiveDns::new();
        // Malware domain 0 on 10.1.0.1.
        pdns.record(DomainId(0), ip(1, 1), Day(2));
        // Unknown domains 1 and 2 share 10.2.0.5.
        pdns.record(DomainId(1), ip(2, 5), Day(3));
        pdns.record(DomainId(2), ip(2, 5), Day(4));
        // Benign domain 3 on 10.3.0.9 — must not contribute.
        pdns.record(DomainId(3), ip(3, 9), Day(4));
        // Outside the window: malware domain 0 on 10.4.0.4.
        pdns.record(DomainId(0), ip(4, 4), Day(30));
        AbuseIndex::build(&pdns, DayWindow::new(Day(0), Day(10)), |d| match d.0 {
            0 => Label::Malware,
            3 => Label::Benign,
            _ => Label::Unknown,
        })
    }

    #[test]
    fn malware_ip_and_prefix() {
        let idx = build_sample();
        assert!(idx.is_malware_ip(ip(1, 1)));
        assert!(idx.is_malware_prefix(ip(1, 1).prefix24()));
        assert!(idx.is_malware_prefix(ip(1, 200).prefix24())); // same /24
        assert!(!idx.is_malware_ip(ip(1, 200)));
        // Outside window must not register.
        assert!(!idx.is_malware_ip(ip(4, 4)));
        assert_eq!(idx.malware_ip_count(), 1);
        assert_eq!(idx.malware_prefix_count(), 1);
    }

    #[test]
    fn unknown_counts_are_per_distinct_domain() {
        let idx = build_sample();
        assert_eq!(idx.unknown_domains_on_ip(ip(2, 5)), 2);
        assert_eq!(idx.unknown_domains_on_prefix(ip(2, 5).prefix24()), 2);
        assert_eq!(idx.unknown_domains_on_ip(ip(9, 9)), 0);
    }

    #[test]
    fn benign_history_is_ignored() {
        let idx = build_sample();
        assert!(!idx.is_malware_ip(ip(3, 9)));
        assert_eq!(idx.unknown_domains_on_ip(ip(3, 9)), 0);
    }

    #[test]
    fn repeat_resolutions_count_once() {
        let mut pdns = PassiveDns::new();
        pdns.record(DomainId(1), ip(2, 5), Day(1));
        pdns.record(DomainId(1), ip(2, 5), Day(2));
        pdns.record(DomainId(1), ip(2, 5), Day(3));
        let idx = AbuseIndex::build(&pdns, DayWindow::new(Day(0), Day(10)), |_| Label::Unknown);
        assert_eq!(idx.unknown_domains_on_ip(ip(2, 5)), 1);
    }
}
