//! Rolling window maintenance of the IP-abuse index.
//!
//! [`AbuseIndex::build`] scans every pDNS record inside the `W`-day window,
//! which at ISP scale means re-reading five months of archive every morning.
//! [`RollingAbuseIndex`] maintains the identical index incrementally:
//! advancing the window from `[d − W, d)` to `[d − W + 1, d + 1)` ingests
//! the records of the entering day and evicts the records of the leaving
//! day, with per-IP / per-prefix counters that are removed when they
//! decrement to zero — so the resulting [`AbuseIndex`] compares equal to a
//! from-scratch build of the same window under the same labeling.
//!
//! Because domain labels evolve between days (blacklists grow), every
//! advance first re-consults `label_of` for all domains still inside the
//! window and moves their contributions between the malware/unknown
//! structures when the label changed.

use std::collections::{BTreeMap, BTreeSet};

use segugio_model::{DayWindow, DomainId, Ipv4, Label, Prefix24};

use crate::abuse::AbuseIndex;
use crate::store::PassiveDns;

/// The IP space an [`advance`](RollingAbuseIndex::advance) touched:
/// conservative supersets of the IPs and /24 prefixes whose abuse answers
/// may differ from the previous window.
///
/// Any IP-level change also marks the enclosing prefix, so a consumer that
/// caches per-domain answers can invalidate on
/// `ips.contains(ip) || prefixes.contains(ip.prefix24())`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbuseDelta {
    /// IPs whose `is_malware_ip` / `unknown_domains_on_ip` answers may have
    /// changed.
    pub ips: BTreeSet<Ipv4>,
    /// Prefixes whose `is_malware_prefix` / `unknown_domains_on_prefix`
    /// answers may have changed.
    pub prefixes: BTreeSet<Prefix24>,
}

impl AbuseDelta {
    /// Whether the advance left every abuse answer unchanged.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty() && self.prefixes.is_empty()
    }

    fn touch(&mut self, ip: Ipv4) {
        self.ips.insert(ip);
        self.prefixes.insert(ip.prefix24());
    }
}

/// Per-domain window state: the label last applied and, per resolved IP,
/// how many in-window days carry a `(domain, ip)` record.
#[derive(Debug, Clone)]
struct DomainState {
    label: Label,
    ips: BTreeMap<Ipv4, u32>,
}

/// An [`AbuseIndex`] kept current across consecutive day windows by delta
/// ingestion/eviction instead of full rebuilds.
///
/// # Example
///
/// ```
/// use segugio_model::{Day, DayWindow, DomainId, Ipv4, Label};
/// use segugio_pdns::{AbuseIndex, PassiveDns, RollingAbuseIndex};
///
/// let mut pdns = PassiveDns::new();
/// pdns.record(DomainId(0), Ipv4::from_octets(203, 0, 113, 9), Day(3));
/// let label = |d: DomainId| if d == DomainId(0) { Label::Malware } else { Label::Unknown };
///
/// let mut rolling = RollingAbuseIndex::new();
/// rolling.advance(&pdns, DayWindow::new(Day(0), Day(10)), label);
/// assert_eq!(
///     rolling.index(),
///     &AbuseIndex::build(&pdns, DayWindow::new(Day(0), Day(10)), label)
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct RollingAbuseIndex {
    index: AbuseIndex,
    window: Option<DayWindow>,
    domains: BTreeMap<DomainId, DomainState>,
    // Distinct in-window (malware-domain, ip) contributions per IP/prefix;
    // the index's malware sets hold exactly the keys with nonzero count.
    malware_ip_refs: BTreeMap<Ipv4, u32>,
    malware_prefix_refs: BTreeMap<Prefix24, u32>,
    /// Relabel worklist scratch, reused across advances so the daily
    /// relabel pass allocates nothing once warmed up.
    relabel_scratch: Vec<(DomainId, Label, Label)>,
}

impl RollingAbuseIndex {
    /// Creates an empty rolling index covering no window.
    pub fn new() -> Self {
        Self::default()
    }

    /// The maintained index, equal to `AbuseIndex::build` over the window
    /// of the most recent [`advance`](Self::advance).
    pub fn index(&self) -> &AbuseIndex {
        &self.index
    }

    /// The window the index currently covers, if any advance has run.
    pub fn window(&self) -> Option<DayWindow> {
        self.window
    }

    /// Moves the index to `new_window`, relabeling tracked domains with
    /// `label_of`, evicting the days that left the window and ingesting the
    /// days that entered it. Returns the touched IP space.
    ///
    /// The first call (and any non-monotone move, where either window bound
    /// steps backwards) bootstraps by ingesting the whole window; monotone
    /// daily advances do O(changed records) work instead of O(window).
    pub fn advance<F>(
        &mut self,
        pdns: &PassiveDns,
        new_window: DayWindow,
        label_of: F,
    ) -> AbuseDelta
    where
        F: Fn(DomainId) -> Label,
    {
        let mut delta = AbuseDelta::default();
        match self.window {
            Some(old) if new_window.start() >= old.start() && new_window.end() >= old.end() => {
                // 1. Relabel: a domain still in the window may have entered
                //    the blacklist since yesterday; move its contributions.
                //    The worklist lives in a reusable scratch vector, and
                //    each relabeled domain's IP map is taken out of its
                //    state (and put back) rather than copied, so the pass
                //    itself allocates nothing.
                let mut relabels = std::mem::take(&mut self.relabel_scratch);
                relabels.clear();
                relabels.extend(self.domains.iter().filter_map(|(&dom, state)| {
                    let new_label = label_of(dom);
                    (new_label != state.label).then_some((dom, state.label, new_label))
                }));
                for &(dom, old_label, new_label) in &relabels {
                    let Some(state) = self.domains.get_mut(&dom) else {
                        continue;
                    };
                    state.label = new_label;
                    let ips = std::mem::take(&mut state.ips);
                    for &ip in ips.keys() {
                        // add_pair/remove_pair only touch the index and the
                        // refcount maps, never `domains`, so the taken map
                        // can be restored to the same entry afterwards.
                        self.remove_pair(old_label, ip, &mut delta);
                        self.add_pair(new_label, ip, &mut delta);
                    }
                    if let Some(state) = self.domains.get_mut(&dom) {
                        state.ips = ips;
                    }
                }
                self.relabel_scratch = relabels;
                // 2. Evict the days that left: [old.start, min(old.end, new.start)).
                let leaving = DayWindow::new(old.start(), old.end().min(new_window.start()));
                for day in leaving.iter() {
                    for &(dom, ip) in pdns.records_on(day) {
                        self.remove_record(dom, ip, &mut delta);
                    }
                }
                // 3. Ingest the days that entered: [max(old.end, new.start), new.end).
                let entering = DayWindow::new(old.end().max(new_window.start()), new_window.end());
                for day in entering.iter() {
                    for &(dom, ip) in pdns.records_on(day) {
                        self.add_record(dom, ip, &label_of, &mut delta);
                    }
                }
            }
            _ => {
                // Bootstrap (or a window moving backwards): rebuild. Every
                // previously-covered IP is touched — conservatively mark the
                // old state plus everything ingested.
                for &ip in self.index.unknown_ip_domains.keys() {
                    delta.touch(ip);
                }
                for &ip in &self.index.malware_ips {
                    delta.touch(ip);
                }
                for &prefix in &self.index.malware_prefixes {
                    delta.prefixes.insert(prefix);
                }
                for &prefix in self.index.unknown_prefix_domains.keys() {
                    delta.prefixes.insert(prefix);
                }
                self.index = AbuseIndex::default();
                self.domains.clear();
                self.malware_ip_refs.clear();
                self.malware_prefix_refs.clear();
                for day in new_window.iter() {
                    for &(dom, ip) in pdns.records_on(day) {
                        self.add_record(dom, ip, &label_of, &mut delta);
                    }
                }
            }
        }
        self.window = Some(new_window);
        delta
    }

    /// Adds one `(domain, ip)` day record. The first in-window record of a
    /// pair contributes to the index under the domain's current label.
    fn add_record<F>(&mut self, dom: DomainId, ip: Ipv4, label_of: &F, delta: &mut AbuseDelta)
    where
        F: Fn(DomainId) -> Label,
    {
        let (label, first) = {
            let state = self.domains.entry(dom).or_insert_with(|| DomainState {
                label: label_of(dom),
                // segugio-lint: allow(H4, empty BTreeMap::new is lazy and runs once per first-seen domain)
                ips: BTreeMap::new(),
            });
            let count = state.ips.entry(ip).or_insert(0);
            *count += 1;
            (state.label, *count == 1)
        };
        if first {
            self.add_pair(label, ip, delta);
        }
    }

    /// Removes one `(domain, ip)` day record; the pair's contribution is
    /// withdrawn when its last in-window record leaves.
    fn remove_record(&mut self, dom: DomainId, ip: Ipv4, delta: &mut AbuseDelta) {
        let mut evicted_pair = None;
        if let Some(state) = self.domains.get_mut(&dom) {
            if let Some(count) = state.ips.get_mut(&ip) {
                *count = count.saturating_sub(1);
                if *count == 0 {
                    state.ips.remove(&ip);
                    evicted_pair = Some(state.label);
                }
            }
            if state.ips.is_empty() {
                self.domains.remove(&dom);
            }
        }
        if let Some(label) = evicted_pair {
            self.remove_pair(label, ip, delta);
        }
    }

    /// Serializes the rolling state as deterministic text lines appended to
    /// `out`, for embedding in `segugio-core`'s checkpoint documents.
    ///
    /// Only the window and the per-domain states are written: the index and
    /// the malware refcount maps are pure functions of the domain states
    /// and are rebuilt on load by replaying each distinct `(label, ip)`
    /// pair, so a loaded index can never disagree with its domain states.
    pub fn write_text(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self.window {
            Some(w) => {
                let _ = writeln!(out, "rolling v1 window {} {}", w.start().0, w.end().0);
            }
            None => {
                let _ = writeln!(out, "rolling v1 no-window");
            }
        }
        let _ = writeln!(out, "domains {}", self.domains.len());
        for (dom, state) in &self.domains {
            let label = match state.label {
                Label::Malware => 'M',
                Label::Benign => 'B',
                Label::Unknown => 'U',
            };
            let _ = write!(out, "d {} {label} {}", dom.0, state.ips.len());
            for (ip, count) in &state.ips {
                let _ = write!(out, " {} {count}", ip.0);
            }
            out.push('\n');
        }
        out.push_str("end-rolling\n");
    }

    /// Reads one rolling index serialized by [`write_text`](Self::write_text)
    /// from `lines`, consuming up to and including its `end-rolling`
    /// terminator.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line. The loader never
    /// panics on hostile bytes and rejects states a real window could not
    /// have produced (zero day-counts, duplicate domains, unsorted keys).
    pub fn read_text<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<Self, String> {
        let header = lines
            .next()
            .ok_or_else(|| "unexpected end of input, expected rolling header".to_owned())?;
        let mut parts = header.split_whitespace();
        if (parts.next(), parts.next()) != (Some("rolling"), Some("v1")) {
            return Err("expected `rolling v1` header".to_owned());
        }
        let window = match parts.next() {
            Some("no-window") => None,
            Some("window") => {
                let start: u32 = parse_field(parts.next(), "window start")?;
                let end: u32 = parse_field(parts.next(), "window end")?;
                if end < start {
                    return Err("rolling window end precedes its start".to_owned());
                }
                Some(DayWindow::new(
                    segugio_model::Day(start),
                    segugio_model::Day(end),
                ))
            }
            _ => return Err("expected `window` or `no-window`".to_owned()),
        };
        if parts.next().is_some() {
            return Err("trailing tokens on rolling header".to_owned());
        }
        let count_line = lines
            .next()
            .ok_or_else(|| "unexpected end of input, expected domains count".to_owned())?;
        let mut parts = count_line.split_whitespace();
        if parts.next() != Some("domains") {
            return Err("expected `domains` line".to_owned());
        }
        let n: u64 = parse_field(parts.next(), "domain count")?;
        if parts.next().is_some() {
            return Err("trailing tokens on `domains` line".to_owned());
        }

        let mut rolling = RollingAbuseIndex {
            window,
            ..RollingAbuseIndex::default()
        };
        let mut unused = AbuseDelta::default();
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| "unexpected end of input, expected domain state".to_owned())?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some("d") {
                return Err("expected `d` domain-state line".to_owned());
            }
            let dom = DomainId(parse_field(parts.next(), "domain id")?);
            let label = match parts.next() {
                Some("M") => Label::Malware,
                Some("B") => Label::Benign,
                Some("U") => Label::Unknown,
                _ => return Err("malformed domain label".to_owned()),
            };
            let k: u64 = parse_field(parts.next(), "ip count")?;
            if k == 0 {
                return Err("domain state with no in-window records".to_owned());
            }
            let mut ips = BTreeMap::new();
            for _ in 0..k {
                let ip = Ipv4(parse_field(parts.next(), "ip")?);
                let days: u32 = parse_field(parts.next(), "ip day count")?;
                if days == 0 {
                    return Err("ip with zero in-window day count".to_owned());
                }
                if ips.insert(ip, days).is_some() {
                    return Err("duplicate ip in domain state".to_owned());
                }
            }
            if parts.next().is_some() {
                return Err("trailing tokens on domain-state line".to_owned());
            }
            // Replay: the first in-window record of each pair contributes to
            // the index under the domain's label, exactly as add_record
            // would have.
            for &ip in ips.keys() {
                rolling.add_pair(label, ip, &mut unused);
            }
            if rolling
                .domains
                .insert(dom, DomainState { label, ips })
                .is_some()
            {
                return Err("duplicate domain in rolling state".to_owned());
            }
        }
        let end = lines
            .next()
            .ok_or_else(|| "unexpected end of input, expected end-rolling".to_owned())?;
        if end.trim() != "end-rolling" {
            return Err("expected `end-rolling` terminator".to_owned());
        }
        Ok(rolling)
    }

    /// Registers a distinct `(domain, ip)` pair's contribution under `label`.
    fn add_pair(&mut self, label: Label, ip: Ipv4, delta: &mut AbuseDelta) {
        match label {
            Label::Malware => {
                let refs = self.malware_ip_refs.entry(ip).or_insert(0);
                *refs += 1;
                if *refs == 1 {
                    self.index.malware_ips.insert(ip);
                }
                let prefix = ip.prefix24();
                let refs = self.malware_prefix_refs.entry(prefix).or_insert(0);
                *refs += 1;
                if *refs == 1 {
                    self.index.malware_prefixes.insert(prefix);
                }
                delta.touch(ip);
            }
            Label::Unknown => {
                *self.index.unknown_ip_domains.entry(ip).or_insert(0) += 1;
                *self
                    .index
                    .unknown_prefix_domains
                    .entry(ip.prefix24())
                    .or_insert(0) += 1;
                delta.touch(ip);
            }
            // Benign history contributes nothing to the index.
            Label::Benign => {}
        }
    }

    /// Withdraws a distinct `(domain, ip)` pair's contribution under
    /// `label`, removing counters that reach zero.
    fn remove_pair(&mut self, label: Label, ip: Ipv4, delta: &mut AbuseDelta) {
        match label {
            Label::Malware => {
                if let Some(refs) = self.malware_ip_refs.get_mut(&ip) {
                    *refs = refs.saturating_sub(1);
                    if *refs == 0 {
                        self.malware_ip_refs.remove(&ip);
                        self.index.malware_ips.remove(&ip);
                    }
                }
                let prefix = ip.prefix24();
                if let Some(refs) = self.malware_prefix_refs.get_mut(&prefix) {
                    *refs = refs.saturating_sub(1);
                    if *refs == 0 {
                        self.malware_prefix_refs.remove(&prefix);
                        self.index.malware_prefixes.remove(&prefix);
                    }
                }
                delta.touch(ip);
            }
            Label::Unknown => {
                if let Some(count) = self.index.unknown_ip_domains.get_mut(&ip) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        self.index.unknown_ip_domains.remove(&ip);
                    }
                }
                let prefix = ip.prefix24();
                if let Some(count) = self.index.unknown_prefix_domains.get_mut(&prefix) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        self.index.unknown_prefix_domains.remove(&prefix);
                    }
                }
                delta.touch(ip);
            }
            Label::Benign => {}
        }
    }
}

/// Parses a whitespace-separated field of a rolling-state line.
fn parse_field<T: std::str::FromStr>(part: Option<&str>, what: &str) -> Result<T, String> {
    part.ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("malformed {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use segugio_model::Day;

    fn ip(a: u8, d: u8) -> Ipv4 {
        Ipv4::from_octets(10, a, 0, d)
    }

    /// Labels evolving with the day horizon: domain 0 is always malware,
    /// domain 1 becomes malware once `horizon >= 6`, domain 3 is benign.
    fn label_at(horizon: u32) -> impl Fn(DomainId) -> Label {
        move |d: DomainId| match d.0 {
            0 => Label::Malware,
            1 if horizon >= 6 => Label::Malware,
            3 => Label::Benign,
            _ => Label::Unknown,
        }
    }

    fn sample_pdns() -> PassiveDns {
        let mut pdns = PassiveDns::new();
        pdns.record(DomainId(0), ip(1, 1), Day(0));
        pdns.record(DomainId(0), ip(1, 1), Day(2));
        pdns.record(DomainId(1), ip(2, 5), Day(1));
        pdns.record(DomainId(2), ip(2, 5), Day(3));
        pdns.record(DomainId(3), ip(3, 9), Day(2));
        pdns.record(DomainId(2), ip(1, 7), Day(5));
        pdns.record(DomainId(0), ip(4, 4), Day(6));
        pdns.record(DomainId(1), ip(2, 5), Day(7));
        pdns.record(DomainId(4), ip(2, 6), Day(8));
        pdns
    }

    #[test]
    fn rolling_matches_scratch_across_advances() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        for horizon in 3..=12u32 {
            let window = Day(horizon).lookback_exclusive(5);
            rolling.advance(&pdns, window, label_at(horizon));
            let scratch = AbuseIndex::build(&pdns, window, label_at(horizon));
            assert_eq!(rolling.index(), &scratch, "window {window}");
            assert_eq!(rolling.window(), Some(window));
        }
    }

    #[test]
    fn relabel_moves_contributions() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        let w5 = Day(5).lookback_exclusive(5);
        rolling.advance(&pdns, w5, label_at(5));
        // Domain 1's ip(2,5) counts as unknown before day 6.
        assert!(!rolling.index().is_malware_ip(ip(2, 5)));
        assert_eq!(rolling.index().unknown_domains_on_ip(ip(2, 5)), 2);
        let w6 = Day(6).lookback_exclusive(5);
        let delta = rolling.advance(&pdns, w6, label_at(6));
        // Now domain 1 is blacklisted: its contribution flips to malware.
        assert!(rolling.index().is_malware_ip(ip(2, 5)));
        assert_eq!(rolling.index().unknown_domains_on_ip(ip(2, 5)), 1);
        assert!(delta.ips.contains(&ip(2, 5)));
        assert_eq!(rolling.index(), &AbuseIndex::build(&pdns, w6, label_at(6)));
    }

    #[test]
    fn eviction_removes_zeroed_counters() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        rolling.advance(&pdns, DayWindow::new(Day(0), Day(3)), label_at(3));
        assert!(rolling.index().is_malware_ip(ip(1, 1)));
        // Slide past all of domain 0's ip(1,1) records.
        let late = DayWindow::new(Day(3), Day(6));
        let delta = rolling.advance(&pdns, late, label_at(6));
        assert!(!rolling.index().is_malware_ip(ip(1, 1)));
        assert!(delta.ips.contains(&ip(1, 1)));
        assert_eq!(
            rolling.index(),
            &AbuseIndex::build(&pdns, late, label_at(6))
        );
    }

    #[test]
    fn quiet_advance_reports_empty_delta() {
        let mut pdns = PassiveDns::new();
        pdns.record(DomainId(0), ip(1, 1), Day(0));
        let mut rolling = RollingAbuseIndex::new();
        rolling.advance(&pdns, DayWindow::new(Day(1), Day(4)), label_at(4));
        // Nothing enters, nothing leaves, nothing relabels.
        let delta = rolling.advance(&pdns, DayWindow::new(Day(2), Day(5)), label_at(5));
        assert!(delta.is_empty());
    }

    #[test]
    fn backwards_window_rebuilds() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        rolling.advance(&pdns, DayWindow::new(Day(4), Day(9)), label_at(9));
        let back = DayWindow::new(Day(0), Day(5));
        let delta = rolling.advance(&pdns, back, label_at(5));
        assert_eq!(
            rolling.index(),
            &AbuseIndex::build(&pdns, back, label_at(5))
        );
        assert!(!delta.is_empty(), "rebuild touches the covered IP space");
    }

    #[test]
    fn text_round_trip_preserves_behavior() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        rolling.advance(&pdns, Day(6).lookback_exclusive(5), label_at(6));

        let mut text = String::new();
        rolling.write_text(&mut text);
        let loaded = RollingAbuseIndex::read_text(&mut text.lines()).expect("round trip");
        assert_eq!(loaded.index(), rolling.index());
        assert_eq!(loaded.window(), rolling.window());
        assert_eq!(loaded.malware_ip_refs, rolling.malware_ip_refs);
        assert_eq!(loaded.malware_prefix_refs, rolling.malware_prefix_refs);
        // Write is a fixed point.
        let mut again = String::new();
        loaded.write_text(&mut again);
        assert_eq!(text, again);

        // The loaded copy keeps advancing identically to the original.
        let mut rolling = rolling;
        let mut loaded = loaded;
        for horizon in 7..=10u32 {
            let window = Day(horizon).lookback_exclusive(5);
            let da = rolling.advance(&pdns, window, label_at(horizon));
            let db = loaded.advance(&pdns, window, label_at(horizon));
            assert_eq!(da, db, "window {window}");
            assert_eq!(loaded.index(), rolling.index());
        }
    }

    #[test]
    fn empty_rolling_round_trips() {
        let rolling = RollingAbuseIndex::new();
        let mut text = String::new();
        rolling.write_text(&mut text);
        let loaded = RollingAbuseIndex::read_text(&mut text.lines()).expect("empty round trip");
        assert_eq!(loaded.window(), None);
        assert_eq!(loaded.index(), &AbuseIndex::default());
    }

    #[test]
    fn read_text_rejects_garbage() {
        for bad in [
            "",
            "rolling v2 no-window",
            "rolling v1 window 5 2",
            "rolling v1 no-window\ndomains x",
            "rolling v1 no-window\ndomains 1\nd 3 Z 1 7 1\nend-rolling",
            // Zero day-count is impossible for an in-window record.
            "rolling v1 no-window\ndomains 1\nd 3 U 1 7 0\nend-rolling",
            // Duplicate domain.
            "rolling v1 no-window\ndomains 2\nd 3 U 1 7 1\nd 3 U 1 8 1\nend-rolling",
            // Missing terminator.
            "rolling v1 no-window\ndomains 0",
        ] {
            assert!(
                RollingAbuseIndex::read_text(&mut bad.lines()).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn disjoint_jump_forward_matches_scratch() {
        let pdns = sample_pdns();
        let mut rolling = RollingAbuseIndex::new();
        rolling.advance(&pdns, DayWindow::new(Day(0), Day(3)), label_at(3));
        // Jump far ahead: the windows do not even overlap.
        let far = DayWindow::new(Day(6), Day(9));
        rolling.advance(&pdns, far, label_at(9));
        assert_eq!(rolling.index(), &AbuseIndex::build(&pdns, far, label_at(9)));
    }
}
