//! Workspace-level integration suite for the Segugio reproduction.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. It re-exports the member crates
//! for convenience.

pub use segugio_baselines as baselines;
pub use segugio_core as core;
pub use segugio_eval as eval;
pub use segugio_graph as graph;
pub use segugio_ingest as ingest;
pub use segugio_ml as ml;
pub use segugio_model as model;
pub use segugio_pdns as pdns;
pub use segugio_traffic as traffic;
