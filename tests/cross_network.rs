//! Cross-network generalization: a model trained on one ISP's traffic must
//! transfer to a different ISP (the paper's Fig. 6c headline).

use segugio_core::{ClassifierKind, SegugioConfig};
use segugio_eval::protocol::{select_test_split, train_and_eval};
use segugio_eval::Scenario;
use segugio_traffic::IspConfig;

#[test]
fn model_trained_on_isp1_detects_on_isp2() {
    let w = 20;
    let isp1 = Scenario::run(IspConfig::small(311), w, &[w]);
    let isp2 = Scenario::run(
        IspConfig {
            name: "other-isp".to_owned(),
            machines: 4_000,
            ..IspConfig::small(622)
        },
        w,
        &[w + 15],
    );

    let mut config = SegugioConfig::default();
    if let ClassifierKind::Forest(f) = &mut config.classifier {
        f.n_trees = 60;
    }

    let bl1 = isp1.isp().commercial_blacklist().clone();
    let bl2 = isp2.isp().commercial_blacklist().clone();
    let split = select_test_split(&isp2, w + 15, &bl2, 0.5, 0.5, 9);
    let out = train_and_eval(&isp1, w, &isp2, w + 15, &split, &config, &bl1, &bl2);

    assert!(out.tested_malware >= 30);
    assert!(out.tested_benign >= 500);
    let tpr = out.roc.tpr_at_fpr(0.01);
    assert!(
        tpr >= 0.55,
        "cross-network TPR@1%FP = {tpr:.3}; the model must transfer"
    );
    assert!(out.roc.auc() > 0.9, "cross-network AUC {}", out.roc.auc());
}
