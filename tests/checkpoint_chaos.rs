//! Kill-resume parity: a deployment killed at *every* injected crash
//! point and resumed from its checkpoints produces a `DayReport` stream
//! bit-for-bit identical to the uninterrupted run — across 3 seeds and
//! scoring widths 1/2/4. Corrupted generations (torn tail, bit flip,
//! truncation, deletion — the `FaultInjector`'s checkpoint fault kinds)
//! degrade to an older generation or a from-scratch rebuild with typed
//! `Degradation` records, and never panic.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use segugio_core::{
    write_atomic_with_kill, DayReport, Degradation, SnapshotInput, Tracker, TrackerConfig,
    WriteOutcome,
};
use segugio_model::Day;
use segugio_traffic::{
    CheckpointFault, DayTraffic, FaultConfig, FaultInjector, IspConfig, IspNetwork,
};

/// Chaos seeds used by this suite and by the CI `chaos` job. Keep at
/// least three.
const CHAOS_SEEDS: [u64; 3] = [101, 202, 303];
/// Scoring widths the parity contract is checked at.
const WIDTHS: [usize; 3] = [1, 2, 4];
/// Deployment length, in days.
const DAYS: usize = 10;
/// Checkpoint generations retained, so fallback always has an older one.
const KEEP: usize = 3;

/// A unique scratch directory per use, cleaned up on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("segugio-chaos-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn tracker_config(width: usize) -> TrackerConfig {
    let mut config = TrackerConfig {
        target_fpr: 0.02,
        ..TrackerConfig::default()
    };
    config.segugio.parallelism = Some(width);
    config
}

fn input_for<'a>(isp: &'a IspNetwork, traffic: &'a DayTraffic) -> SnapshotInput<'a> {
    SnapshotInput {
        day: traffic.day,
        queries: &traffic.queries,
        resolutions: &traffic.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    }
}

/// The full on-disk state of a checkpoint directory, filename → bytes.
fn dir_listing(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("list checkpoint dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        out.insert(name, fs::read(entry.path()).expect("read generation"));
    }
    out
}

/// Recreates a recorded checkpoint directory state in a fresh location.
fn materialize(listing: &BTreeMap<String, Vec<u8>>, dir: &Path) {
    for (name, bytes) in listing {
        fs::write(dir.join(name), bytes).expect("materialize generation");
    }
}

/// The uninterrupted reference run: every day is processed and
/// checkpointed, and the exact on-disk state after each day's save is
/// recorded so any crash instant can be reconstructed later.
struct Baseline {
    reports: Vec<DayReport>,
    /// The checkpoint document each day's save wrote.
    docs: Vec<Vec<u8>>,
    /// Checkpoint-directory contents right after each day's save+prune.
    listings: Vec<BTreeMap<String, Vec<u8>>>,
}

fn run_baseline(cfg: &IspConfig, width: usize) -> Baseline {
    let scratch = ScratchDir::new("baseline");
    let mut isp = IspNetwork::new(cfg.clone());
    isp.warm_up(16);
    let mut tracker = Tracker::new();
    let config = tracker_config(width);
    let mut baseline = Baseline {
        reports: Vec::new(),
        docs: Vec::new(),
        listings: Vec::new(),
    };
    for _ in 0..DAYS {
        let traffic = isp.next_day();
        let input = input_for(&isp, &traffic);
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("clean warmed-up fixture seeds both classes");
        baseline.reports.push(report);
        tracker
            .save_checkpoint(scratch.path(), KEEP)
            .expect("checkpoint save");
        baseline.docs.push(tracker.save_to_string().into_bytes());
        baseline.listings.push(dir_listing(scratch.path()));
    }
    baseline
}

/// Resumes from `dir` and drives the rest of the deployment: traffic is
/// regenerated from the same seed, days at or before the restored
/// `last_day` are skipped (already processed before the crash), and every
/// later day's report is returned.
fn resume_and_finish(cfg: &IspConfig, width: usize, dir: &Path) -> (Tracker, Vec<DayReport>) {
    let mut tracker = Tracker::resume(dir).expect("resume never errors on corrupt contents");
    let restored = tracker.last_day();
    let mut isp = IspNetwork::new(cfg.clone());
    isp.warm_up(16);
    let config = tracker_config(width);
    let mut reports = Vec::new();
    for _ in 0..DAYS {
        let traffic = isp.next_day();
        if restored.is_some_and(|last| traffic.day <= last) {
            continue;
        }
        let input = input_for(&isp, &traffic);
        let report = tracker
            .process_day(&input, isp.activity(), &config)
            .expect("resumed day must process");
        reports.push(report);
    }
    (tracker, reports)
}

/// Crash after each day's checkpoint committed (the phase boundary): the
/// resumed stream must continue bit-for-bit where the baseline left off.
#[test]
fn kill_at_every_day_boundary_resumes_bit_for_bit() {
    for seed in CHAOS_SEEDS {
        let cfg = IspConfig::tiny(seed);
        let reference = run_baseline(&cfg, WIDTHS[0]);
        for width in WIDTHS {
            let baseline = if width == WIDTHS[0] {
                &reference
            } else {
                // Width must not change a single reported byte.
                let other = run_baseline(&cfg, width);
                assert_eq!(
                    other.reports, reference.reports,
                    "seed {seed}: width {width} diverged from width {}",
                    WIDTHS[0]
                );
                &reference
            };
            for kill_after in 0..DAYS {
                let scratch = ScratchDir::new("boundary");
                materialize(&baseline.listings[kill_after], scratch.path());
                let (tracker, resumed) = resume_and_finish(&cfg, width, scratch.path());
                assert_eq!(
                    tracker.days_processed(),
                    DAYS,
                    "seed {seed} width {width} kill@{kill_after}: wrong day count"
                );
                assert_eq!(
                    resumed,
                    baseline.reports[kill_after + 1..],
                    "seed {seed} width {width} kill@{kill_after}: resumed stream diverged"
                );
            }
        }
    }
}

/// Crash *during* a checkpoint write, at a seeded byte offset: the torn
/// temp file is invisible to resume, the previous generation is restored
/// cleanly, and the interrupted day is replayed bit-for-bit.
#[test]
fn kill_mid_write_replays_the_interrupted_day() {
    for seed in CHAOS_SEEDS {
        let cfg = IspConfig::tiny(seed);
        let injector = FaultInjector::new(FaultConfig {
            kill_mid_checkpoint: 1.0,
            ..FaultConfig::disabled(seed)
        });
        for width in WIDTHS {
            let baseline = run_baseline(&cfg, width);
            for killed_day in 1..DAYS {
                let scratch = ScratchDir::new("midwrite");
                // On-disk state the instant the crash hit: yesterday's
                // generations, plus the torn temp of today's write.
                materialize(&baseline.listings[killed_day - 1], scratch.path());
                let day = baseline.reports[killed_day].day;
                let doc = &baseline.docs[killed_day];
                let offset = injector
                    .checkpoint_faults_for(day)
                    .kill_mid_write
                    .expect("kill probability is 1")
                    % doc.len() as u64;
                let target = scratch.path().join(format!("checkpoint-{}.seg", day.0));
                let outcome = write_atomic_with_kill(&target, doc, offset)
                    .expect("kill injection writes the tmp");
                assert_eq!(outcome, WriteOutcome::KilledMidWrite);
                assert!(!target.exists(), "the live generation must not appear");

                let (_, resumed) = resume_and_finish(&cfg, width, scratch.path());
                assert_eq!(
                    resumed,
                    baseline.reports[killed_day..],
                    "seed {seed} width {width} mid-write kill@{killed_day}: replay diverged"
                );
                assert!(
                    resumed[0].degradation == baseline.reports[killed_day].degradation,
                    "a clean fallback to yesterday's generation emits no extra records"
                );
            }
        }
    }
}

/// Every `CheckpointFault` kind applied to the newest generation: resume
/// falls back (to the older generation, or transparently replays for a
/// deleted file), emits exactly the typed records, and the rest of the
/// stream stays bit-for-bit.
#[test]
fn corrupted_newest_generation_falls_back_with_typed_records() {
    for seed in CHAOS_SEEDS {
        let cfg = IspConfig::tiny(seed);
        let baseline = run_baseline(&cfg, 1);
        let crash_after = DAYS / 2;
        let newest_day = baseline.reports[crash_after].day;
        let previous_day = baseline.reports[crash_after - 1].day;
        let injector = FaultInjector::new(FaultConfig {
            corrupt_checkpoint: 1.0,
            ..FaultConfig::disabled(seed)
        });
        let drawn = injector
            .checkpoint_faults_for(newest_day)
            .corruption
            .expect("corruption probability is 1");
        // Cover the drawn fault and every kind, with seeded offsets.
        let (offset, bit) = match drawn {
            CheckpointFault::TornTail { keep } | CheckpointFault::Truncate { keep } => (keep, 3),
            CheckpointFault::BitFlip { byte, bit } => (byte, bit),
            CheckpointFault::DeleteNewest => (12_345, 5),
        };
        let kinds = [
            CheckpointFault::TornTail { keep: offset },
            CheckpointFault::BitFlip { byte: offset, bit },
            CheckpointFault::Truncate { keep: offset },
            CheckpointFault::DeleteNewest,
        ];
        for fault in kinds {
            let scratch = ScratchDir::new("corrupt");
            materialize(&baseline.listings[crash_after], scratch.path());
            let newest = scratch
                .path()
                .join(format!("checkpoint-{}.seg", newest_day.0));
            let bytes = fs::read(&newest).expect("newest generation");
            match fault.apply(&bytes) {
                Some(damaged) => fs::write(&newest, damaged).expect("damage newest"),
                None => fs::remove_file(&newest).expect("delete newest"),
            }

            let (_, mut resumed) = resume_and_finish(&cfg, 1, scratch.path());
            assert_eq!(
                resumed.len(),
                DAYS - crash_after,
                "seed {seed} {fault:?}: the interrupted day is replayed"
            );
            if fault == CheckpointFault::DeleteNewest {
                // A deleted file is indistinguishable from never-written:
                // clean fallback, no records.
                assert_eq!(
                    resumed,
                    baseline.reports[crash_after..],
                    "seed {seed} delete: replay diverged"
                );
            } else {
                // Typed records lead the first report; everything else is
                // bit-for-bit the baseline.
                let expected = [
                    Degradation::CheckpointDiscarded { day: newest_day },
                    Degradation::RestoredFromCheckpoint { day: previous_day },
                ];
                assert_eq!(
                    &resumed[0].degradation[..2],
                    &expected,
                    "seed {seed} {fault:?}: missing typed fallback records"
                );
                let mut first = resumed[0].clone();
                first.degradation.drain(..2);
                resumed[0] = first;
                assert_eq!(
                    resumed,
                    baseline.reports[crash_after..],
                    "seed {seed} {fault:?}: stream diverged beyond the records"
                );
            }
        }
    }
}

/// When *every* generation is corrupt the tracker rebuilds from scratch:
/// all days are reprocessed, the first report carries one discard record
/// per generation, and the stream still equals the baseline bit-for-bit.
#[test]
fn all_generations_corrupt_rebuilds_from_scratch() {
    let seed = CHAOS_SEEDS[0];
    let cfg = IspConfig::tiny(seed);
    let baseline = run_baseline(&cfg, 1);
    let crash_after = DAYS / 2;
    let scratch = ScratchDir::new("total-loss");
    materialize(&baseline.listings[crash_after], scratch.path());
    let mut damaged_days = Vec::new();
    for (name, bytes) in &baseline.listings[crash_after] {
        let day: u32 = name
            .trim_start_matches("checkpoint-")
            .trim_end_matches(".seg")
            .parse()
            .expect("generation filename");
        damaged_days.push(Day(day));
        let torn = CheckpointFault::Truncate { keep: 17 }
            .apply(bytes)
            .expect("truncation keeps bytes");
        fs::write(scratch.path().join(name), torn).expect("damage generation");
    }
    damaged_days.sort_by(|a, b| b.cmp(a));

    let (tracker, mut resumed) = resume_and_finish(&cfg, 1, scratch.path());
    assert_eq!(resumed.len(), DAYS, "every day is reprocessed from scratch");
    assert_eq!(tracker.days_processed(), DAYS);
    let expected: Vec<Degradation> = damaged_days
        .iter()
        .map(|&day| Degradation::CheckpointDiscarded { day })
        .collect();
    assert_eq!(
        &resumed[0].degradation[..expected.len()],
        &expected[..],
        "one discard record per generation, newest first"
    );
    let mut first = resumed[0].clone();
    first.degradation.drain(..expected.len());
    resumed[0] = first;
    assert_eq!(
        resumed, baseline.reports,
        "the from-scratch rebuild equals the baseline bit-for-bit"
    );
}
