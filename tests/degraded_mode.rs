//! Chaos contract: multi-day deployments driven through the deterministic
//! fault injector complete without panics, degrade only where a fault
//! actually fired, and — with the injector disabled — are bit-for-bit
//! identical to the clean path. The incremental and from-scratch engines
//! must also agree under every fault schedule (the degraded-mode resets
//! are part of the parity contract).

use segugio_core::{
    DayOutcome, DayReport, Degradation, SnapshotInput, Tracker, TrackerConfig, TrackerError,
};
use segugio_ingest::{IngestError, LogCollector, QuarantinePolicy};
use segugio_model::{Blacklist, Day};
use segugio_pdns::PassiveDns;
use segugio_traffic::{FaultConfig, FaultInjector, IspConfig, IspNetwork};

/// What happened to one generated day in a chaos deployment.
#[derive(Debug, Clone, PartialEq)]
enum ChaosDay {
    /// The day's traffic never arrived (tap outage).
    NeverDelivered(Day),
    /// The day reached the tracker; here is its outcome.
    Delivered(DayOutcome),
}

/// Runs a full deployment with per-day faults drawn from `faults`.
///
/// Identical `(cfg, faults)` pairs replay identical runs; with
/// [`FaultConfig::disabled`] the inputs equal the clean path exactly.
fn run_chaos(
    cfg: &IspConfig,
    days: usize,
    faults: FaultConfig,
    incremental: bool,
) -> Vec<ChaosDay> {
    let mut isp = IspNetwork::new(cfg.clone());
    isp.warm_up(16);
    let injector = FaultInjector::new(faults);
    let mut tracker = Tracker::new();
    let mut config = TrackerConfig {
        target_fpr: 0.02,
        ..TrackerConfig::default()
    };
    config.segugio.incremental = incremental;
    config.segugio.parallelism = Some(1);
    let blank = PassiveDns::new();
    let mut outcomes = Vec::with_capacity(days);
    for _ in 0..days {
        let traffic = isp.next_day();
        let f = injector.faults_for(traffic.day);
        if f.drop_day {
            outcomes.push(ChaosDay::NeverDelivered(traffic.day));
            continue;
        }
        let delayed;
        let blacklist = if f.stale_blacklist {
            delayed = injector.delayed_blacklist(isp.commercial_blacklist(), traffic.day);
            &delayed
        } else {
            isp.commercial_blacklist()
        };
        let pdns = if f.blank_pdns { &blank } else { isp.pdns() };
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns,
            blacklist,
            whitelist: isp.whitelist(),
            hidden: None,
        };
        outcomes.push(ChaosDay::Delivered(tracker.process_day_outcome(
            &input,
            isp.activity(),
            &config,
        )));
    }
    outcomes
}

/// Runs the plain clean deployment (no injector anywhere in the loop).
fn run_clean(cfg: &IspConfig, days: usize, incremental: bool) -> Vec<DayReport> {
    let mut isp = IspNetwork::new(cfg.clone());
    isp.warm_up(16);
    let mut tracker = Tracker::new();
    let mut config = TrackerConfig {
        target_fpr: 0.02,
        ..TrackerConfig::default()
    };
    config.segugio.incremental = incremental;
    config.segugio.parallelism = Some(1);
    let mut reports = Vec::with_capacity(days);
    for _ in 0..days {
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        reports.push(
            tracker
                .process_day(&input, isp.activity(), &config)
                .expect("clean warmed-up fixture seeds both classes"),
        );
    }
    reports
}

/// Chaos seeds used by this suite and by the CI `chaos` job. Keep at
/// least three.
const CHAOS_SEEDS: [u64; 3] = [101, 202, 303];

/// Ten chaotic days at every seed: no panics, every skip is typed, and the
/// incremental engine agrees with the from-scratch path outcome-for-outcome
/// under the identical fault schedule.
#[test]
fn chaos_deployments_complete_at_every_seed() {
    let mut eventful_days = 0usize;
    for seed in CHAOS_SEEDS {
        let cfg = IspConfig::tiny(90);
        let incremental = run_chaos(&cfg, 10, FaultConfig::chaos(seed), true);
        let scratch = run_chaos(&cfg, 10, FaultConfig::chaos(seed), false);
        assert_eq!(incremental.len(), 10);
        assert_eq!(
            incremental, scratch,
            "incremental and scratch paths diverged under chaos seed {seed}"
        );
        for day in &incremental {
            match day {
                ChaosDay::NeverDelivered(_) => eventful_days += 1,
                ChaosDay::Delivered(DayOutcome::Skipped { error, .. }) => {
                    assert!(
                        matches!(
                            error,
                            TrackerError::InsufficientSeeds { .. }
                                | TrackerError::NonMonotonicDay { .. }
                        ),
                        "unexpected skip reason under seed {seed}: {error}"
                    );
                    eventful_days += 1;
                }
                ChaosDay::Delivered(DayOutcome::Processed(report)) => {
                    eventful_days += usize::from(report.is_degraded());
                }
            }
        }
    }
    // The contract is only meaningful if chaos actually happened.
    assert!(
        eventful_days > 0,
        "no fault fired across {} seeds — the chaos config is inert",
        CHAOS_SEEDS.len()
    );
}

/// With the injector disabled the chaos harness is a pass-through: reports
/// are bit-for-bit identical to a deployment that never saw the injector.
#[test]
fn disabled_injector_is_bit_for_bit_clean() {
    let cfg = IspConfig::tiny(90);
    for incremental in [true, false] {
        let clean = run_clean(&cfg, 8, incremental);
        let chaos = run_chaos(&cfg, 8, FaultConfig::disabled(99), incremental);
        let unwrapped: Vec<DayReport> = chaos
            .into_iter()
            .map(|day| match day {
                ChaosDay::Delivered(DayOutcome::Processed(report)) => report,
                other => panic!("disabled injector must deliver every day, got {other:?}"),
            })
            .collect();
        assert_eq!(unwrapped, clean, "incremental={incremental}");
        assert!(
            unwrapped.iter().all(|r| r.degradation.is_empty()),
            "no fallback may fire on clean inputs"
        );
    }
}

/// Monotonic degradation: days before the first fault are untouched by the
/// faults that come later — their reports equal the clean run's exactly.
#[test]
fn faults_do_not_reach_back_to_clean_days() {
    for seed in CHAOS_SEEDS {
        let cfg = IspConfig::tiny(90);
        let faults = FaultConfig::chaos(seed);
        let injector = FaultInjector::new(faults.clone());
        let clean = run_clean(&cfg, 10, true);
        let chaos = run_chaos(&cfg, 10, faults, true);
        let first_fault = clean
            .iter()
            .position(|r| injector.faults_for(r.day).any())
            .unwrap_or(clean.len());
        for i in 0..first_fault {
            assert_eq!(
                ChaosDay::Delivered(DayOutcome::Processed(clean[i].clone())),
                chaos[i],
                "pre-fault day {i} diverged under seed {seed}"
            );
        }
    }
}

/// The acceptance scenario: a deployment with exactly one seedless day and
/// one pDNS-blank day completes end to end, and the reports record exactly
/// which fallback fired on which day.
#[test]
fn seedless_and_blank_pdns_days_fall_back_exactly_once_each() {
    const SEEDLESS: usize = 2;
    const BLANK: usize = 4;
    let cfg = IspConfig::tiny(90);
    let run = |incremental: bool| -> Vec<DayReport> {
        let mut isp = IspNetwork::new(cfg.clone());
        isp.warm_up(16);
        let mut tracker = Tracker::new();
        let mut config = TrackerConfig {
            target_fpr: 0.02,
            ..TrackerConfig::default()
        };
        config.segugio.incremental = incremental;
        config.segugio.parallelism = Some(1);
        let empty_blacklist = Blacklist::new();
        let blank_pdns = PassiveDns::new();
        let mut reports = Vec::new();
        for i in 0..7 {
            let traffic = isp.next_day();
            let input = SnapshotInput {
                day: traffic.day,
                queries: &traffic.queries,
                resolutions: &traffic.resolutions,
                table: isp.table(),
                pdns: if i == BLANK { &blank_pdns } else { isp.pdns() },
                blacklist: if i == SEEDLESS {
                    &empty_blacklist
                } else {
                    isp.commercial_blacklist()
                },
                whitelist: isp.whitelist(),
                hidden: None,
            };
            reports.push(
                tracker
                    .process_day(&input, isp.activity(), &config)
                    .expect("every day must complete under the health policy"),
            );
        }
        reports
    };

    let reports = run(true);
    assert_eq!(reports.len(), 7, "the deployment completed end to end");
    for (i, report) in reports.iter().enumerate() {
        match i {
            SEEDLESS => assert_eq!(
                report.degradation,
                vec![Degradation::StaleModel {
                    trained_on: reports[SEEDLESS - 1].day
                }],
                "the seedless day is scored with yesterday's model"
            ),
            BLANK => assert_eq!(
                report.degradation,
                vec![Degradation::MaskedIpFeatures],
                "the blank-pDNS day trains on F1+F2"
            ),
            _ => assert!(
                report.degradation.is_empty(),
                "day {i} must not degrade: {:?}",
                report.degradation
            ),
        }
    }
    // The stale-model day reuses yesterday's calibrated threshold.
    assert_eq!(reports[SEEDLESS].threshold, reports[SEEDLESS - 1].threshold);

    // The engine resets around both fallbacks keep the incremental path
    // bit-for-bit on the scratch path.
    assert_eq!(run(false), reports);
}

/// Out-of-order delivery (the injector's day-swap fault) is rejected as a
/// typed skip and the tracker keeps going on the days that are in order.
#[test]
fn swapped_days_skip_typed_and_recover() {
    let cfg = IspConfig::tiny(90);
    let injector = FaultInjector::new(FaultConfig {
        swap_adjacent_days: 1.0,
        ..FaultConfig::disabled(4)
    });
    let mut isp = IspNetwork::new(cfg);
    isp.warm_up(16);
    let mut tracker = Tracker::new();
    let config = TrackerConfig {
        target_fpr: 0.02,
        ..TrackerConfig::default()
    };
    // Generate four days up front, then deliver in injector order:
    // 1,0,3,2 — each pair's second element arrives out of order.
    let traffic: Vec<_> = (0..4).map(|_| isp.next_day()).collect();
    let days: Vec<Day> = traffic.iter().map(|t| t.day).collect();
    let order = injector.delivery_order(&days);
    assert_ne!(order, days, "the fault must actually reorder");
    let mut processed = 0;
    let mut skipped = 0;
    for day in order {
        let t = traffic
            .iter()
            .find(|t| t.day == day)
            .expect("order is a permutation");
        let input = SnapshotInput {
            day: t.day,
            queries: &t.queries,
            resolutions: &t.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        match tracker.process_day_outcome(&input, isp.activity(), &config) {
            DayOutcome::Processed(_) => processed += 1,
            DayOutcome::Skipped { error, .. } => {
                assert!(matches!(error, TrackerError::NonMonotonicDay { .. }));
                skipped += 1;
            }
        }
    }
    // 1,0,3,2: days 1 and 3 process; 0 and 2 arrive late and are skipped.
    assert_eq!(processed, 2);
    assert_eq!(skipped, 2);
    assert_eq!(tracker.days_processed(), 2);
}

/// Line-level chaos drains into the quarantine layer: a corrupted export
/// either ingests with the damage counted by kind, or is rejected as a
/// whole with nothing committed — never a panic, never a half-poisoned
/// collector.
#[test]
fn corrupted_logs_quarantine_instead_of_poisoning() {
    let mut isp = IspNetwork::new(IspConfig::tiny(90));
    isp.warm_up(16);
    let traffic = isp.next_day();
    let text = segugio_ingest::export_day(
        isp.table(),
        traffic.day.0,
        &traffic.queries,
        &traffic.resolutions,
    );
    for seed in CHAOS_SEEDS {
        // Heavy line damage so both quarantine verdicts occur across seeds.
        let injector = FaultInjector::new(FaultConfig {
            corrupt_line: 0.2,
            truncate_line: 0.1,
            duplicate_line: 0.05,
            ..FaultConfig::disabled(seed)
        });
        let corrupted = injector.corrupt_log(traffic.day, &text);
        let mut collector = LogCollector::new();
        match collector.ingest_quarantined(corrupted.as_slice(), &QuarantinePolicy::default()) {
            Ok(stats) => {
                assert!(stats.ingested > 0, "seed {seed}: something must survive");
                assert!(
                    stats.errors() > 0,
                    "seed {seed}: this much damage must be visible in the stats"
                );
            }
            Err(IngestError::QuarantineExceeded {
                errors, considered, ..
            }) => {
                assert!(errors > 0 && considered >= errors);
                assert_eq!(
                    collector.machine_count(),
                    0,
                    "seed {seed}: rejection must commit nothing"
                );
            }
            Err(other) => panic!("seed {seed}: unexpected ingest error: {other}"),
        }
    }
}
