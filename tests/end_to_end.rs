//! End-to-end integration: the full pipeline on a small-but-realistic ISP.
//!
//! These tests share one simulated scenario (built once) and assert the
//! paper's qualitative claims at `small` scale: high TP at low FP on
//! cross-day detection, determinism, and dominance over the co-occurrence
//! heuristic.

use std::sync::OnceLock;

use segugio_core::{ClassifierKind, SegugioConfig};
use segugio_eval::protocol::{eval_model, select_test_split, train_and_eval};
use segugio_eval::Scenario;
use segugio_ml::RocCurve;
use segugio_traffic::IspConfig;

const TRAIN_DAY: u32 = 20;
const TEST_DAY: u32 = 33;

fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| Scenario::run(IspConfig::small(901), TRAIN_DAY, &[TRAIN_DAY, TEST_DAY]))
}

fn config() -> SegugioConfig {
    let mut config = SegugioConfig::default();
    if let ClassifierKind::Forest(f) = &mut config.classifier {
        f.n_trees = 60;
    }
    config
}

#[test]
fn cross_day_detection_reaches_high_tp_at_low_fp() {
    let s = scenario();
    let bl = s.isp().commercial_blacklist().clone();
    let split = select_test_split(s, TEST_DAY, &bl, 0.5, 0.5, 41);
    let out = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &config(), &bl, &bl);
    assert!(out.tested_malware >= 30, "need a meaningful test set");
    assert!(out.tested_benign >= 500);
    let tpr = out.roc.tpr_at_fpr(0.01);
    assert!(
        tpr >= 0.6,
        "TPR@1%FP = {tpr:.3}, expected the paper-shaped high-detection regime"
    );
    assert!(out.roc.auc() > 0.9, "AUC {}", out.roc.auc());
}

#[test]
fn detection_is_deterministic() {
    let s = scenario();
    let bl = s.isp().commercial_blacklist().clone();
    let split = select_test_split(s, TEST_DAY, &bl, 0.3, 0.2, 42);
    let a = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &config(), &bl, &bl);
    let b = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &config(), &bl, &bl);
    assert_eq!(a.scores.len(), b.scores.len());
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x, y, "same inputs must give identical scores");
    }
}

#[test]
fn segugio_beats_cooccurrence_at_low_fp() {
    let s = scenario();
    let bl = s.isp().commercial_blacklist().clone();
    let split = select_test_split(s, TEST_DAY, &bl, 0.5, 0.5, 43);
    let out = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &config(), &bl, &bl);

    // Co-occurrence scores on the same hidden test graph.
    let hidden = split.hidden();
    let snap = s.snapshot(TEST_DAY, &config(), &bl, Some(&hidden));
    let co: std::collections::HashMap<_, _> = segugio_baselines::cooccurrence_scores(&snap.graph)
        .into_iter()
        .collect();
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for &(d, _, is_mal) in &out.scores {
        if let Some(&score) = co.get(&d) {
            scores.push(score);
            labels.push(is_mal);
        }
    }
    let co_roc = RocCurve::from_scores(&scores, &labels);
    let seg = out.roc.partial_auc(0.01);
    let coo = co_roc.partial_auc(0.01);
    assert!(
        seg > coo,
        "segugio pAUC(1%) {seg:.3} must beat co-occurrence {coo:.3}"
    );
}

#[test]
fn logistic_backend_is_competitive() {
    let s = scenario();
    let bl = s.isp().commercial_blacklist().clone();
    let split = select_test_split(s, TEST_DAY, &bl, 0.5, 0.5, 44);
    let mut cfg = config();
    cfg.classifier = ClassifierKind::Logistic(Default::default());
    let out = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &cfg, &bl, &bl);
    assert!(
        out.roc.auc() > 0.85,
        "logistic regression AUC {} should be solid on this data",
        out.roc.auc()
    );
}

#[test]
fn model_transfers_to_later_day_with_same_split_protocol() {
    // Train once, evaluate with eval_model (deployment path) — results must
    // match the combined train_and_eval output.
    let s = scenario();
    let bl = s.isp().commercial_blacklist().clone();
    let split = select_test_split(s, TEST_DAY, &bl, 0.4, 0.3, 45);
    let cfg = config();
    let combined = train_and_eval(s, TRAIN_DAY, s, TEST_DAY, &split, &cfg, &bl, &bl);

    let hidden = split.hidden();
    let train_snap = s.snapshot(TRAIN_DAY, &cfg, &bl, Some(&hidden));
    let model = segugio_core::Segugio::train(&train_snap, s.isp().activity(), &cfg)
        .expect("training day seeds both classes");
    let replay = eval_model(&model, s, TEST_DAY, &split, &cfg, &bl);
    assert_eq!(combined.scores, replay.scores);
}
