//! Shape checks for the reproduced tables/figures at `small` scale: the
//! quantities the paper reports must land in the right regimes.

use segugio_core::SegugioConfig;
use segugio_eval::experiments::{dataset, Scale};
use segugio_traffic::IspConfig;

#[test]
fn dataset_statistics_match_paper_shapes() {
    let config = SegugioConfig::default();
    let report = dataset::run(&[IspConfig::small(515)], 20, &[20, 21], &config);
    assert_eq!(report.rows.len(), 2);

    // Fig. 3: ~70% of infected machines query more than one control domain.
    let frac = report.multi_domain_fraction();
    assert!(
        (0.5..=0.95).contains(&frac),
        "multi-domain fraction {frac:.2} outside the paper-shaped band"
    );
    // Nobody queries more than ~20 control domains in a day.
    for row in &report.rows {
        assert_eq!(row.infection_histogram.len(), 20);
        let tail = row.infection_histogram[19];
        let total: usize = row.infection_histogram.iter().sum();
        assert!(
            (tail as f64) < 0.05 * total as f64,
            "20+-domain tail too heavy: {tail}/{total}"
        );
    }

    // Pruning reductions in the right regime (paper: domains -26.6%,
    // machines -13.9%, edges -26.6%; the synthetic world is allowed a wide
    // band, but pruning must neither no-op nor devastate the graph).
    let (d, m, e) = report.mean_reductions();
    assert!((0.08..=0.75).contains(&d), "domain reduction {d:.3}");
    assert!((0.03..=0.40).contains(&m), "machine reduction {m:.3}");
    assert!((0.02..=0.60).contains(&e), "edge reduction {e:.3}");
}

#[test]
fn performance_classification_is_cheaper_than_learning() {
    let scale = Scale::small();
    let report = segugio_eval::experiments::performance::run(&scale, 2);
    let (snapshot_ms, train_ms, classify_ms) = report.means();
    // Section IV-G shape: the learning phase (graph + training) dominates;
    // classifying all unknown domains is the cheap part.
    assert!(
        classify_ms < snapshot_ms + train_ms,
        "classify {classify_ms:.1}ms should be cheaper than learning \
         {:.1}ms",
        snapshot_ms + train_ms
    );
    for day in &report.days {
        assert!(day.unknown_domains > 100);
    }
}
