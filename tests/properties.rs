//! Cross-crate property-based tests: invariants that must hold for *any*
//! input, checked with proptest-generated data.

use proptest::prelude::*;

use segugio_graph::labeling::apply_seed_labels;
use segugio_graph::{GraphBuilder, PruneConfig};
use segugio_model::{Day, DomainId, E2ldId, Label, MachineId};

proptest! {
    /// Graph building: adjacency is symmetric — m lists d iff d lists m —
    /// and edge counts agree in both directions.
    #[test]
    fn graph_adjacency_is_symmetric(
        edges in proptest::collection::vec((0u32..40, 0u32..60), 1..300)
    ) {
        let mut b = GraphBuilder::new(Day(0));
        for &(m, d) in &edges {
            b.add_query(MachineId(m), DomainId(d));
        }
        let g = b.build();
        let forward: usize = g.machine_indices().map(|m| g.domains_of(m).count()).sum();
        let backward: usize = g.domain_indices().map(|d| g.machines_of(d).count()).sum();
        prop_assert_eq!(forward, g.edge_count());
        prop_assert_eq!(backward, g.edge_count());
        for m in g.machine_indices() {
            for d in g.domains_of(m) {
                prop_assert!(g.machines_of(d).any(|mm| mm == m));
            }
        }
    }

    /// Pruning never increases any count, and the stats always reconcile
    /// with the returned graph.
    #[test]
    fn pruning_is_monotone(
        edges in proptest::collection::vec((0u32..30, 0u32..50), 1..400),
        malware_mod in 2u32..20,
        min_deg in 0usize..6,
    ) {
        let mut b = GraphBuilder::new(Day(0));
        for &(m, d) in &edges {
            b.add_query(MachineId(m), DomainId(d));
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d.0 % malware_mod == 0, |e| e.0 % 7 == 1);
        let config = PruneConfig {
            min_machine_degree: min_deg,
            proxy_percentile: 0.99,
            popular_fraction: 0.5,
        };
        let (pruned, stats) = g.prune(&config);
        prop_assert!(pruned.machine_count() <= g.machine_count());
        prop_assert!(pruned.domain_count() <= g.domain_count());
        prop_assert!(pruned.edge_count() <= g.edge_count());
        prop_assert_eq!(stats.machines_after, pruned.machine_count());
        prop_assert_eq!(stats.domains_after, pruned.domain_count());
        prop_assert_eq!(stats.edges_after, pruned.edge_count());
        // Labels survive: every kept domain keeps its seed label.
        for d in pruned.domain_indices() {
            let id = pruned.domain_id(d);
            let expected = if id.0 % malware_mod == 0 {
                Label::Malware
            } else if pruned.domain_e2ld(d).0 % 7 == 1 {
                Label::Benign
            } else {
                Label::Unknown
            };
            prop_assert_eq!(pruned.domain_label(d), expected);
        }
    }

    /// Machine labels are a pure function of adjacent domain labels.
    #[test]
    fn machine_labels_follow_domains(
        edges in proptest::collection::vec((0u32..20, 0u32..40), 1..200),
        malware_mod in 2u32..10,
        benign_mod in 2u32..10,
    ) {
        let mut b = GraphBuilder::new(Day(0));
        for &(m, d) in &edges {
            b.add_query(MachineId(m), DomainId(d));
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(
            &mut g,
            |d| d.0 % malware_mod == 0,
            |e| e.0 % benign_mod == 1,
        );
        for m in g.machine_indices() {
            let labels: Vec<Label> = g.domains_of(m).map(|d| g.domain_label(d)).collect();
            let expected = if labels.iter().any(|l| l.is_malware()) {
                Label::Malware
            } else if labels.iter().all(|l| l.is_benign()) {
                Label::Benign
            } else {
                Label::Unknown
            };
            prop_assert_eq!(g.machine_label(m), expected);
            let malware_degree = labels.iter().filter(|l| l.is_malware()).count() as u32;
            prop_assert_eq!(g.machine_malware_degree(m), malware_degree);
        }
    }

    /// Label hiding: hiding a domain never changes machines that did not
    /// query it, and the hidden domain always reads unknown.
    #[test]
    fn hiding_is_local(
        edges in proptest::collection::vec((0u32..15, 0u32..25), 1..150),
        malware_mod in 2u32..8,
    ) {
        let mut b = GraphBuilder::new(Day(0));
        for &(m, d) in &edges {
            b.add_query(MachineId(m), DomainId(d));
            b.set_e2ld(DomainId(d), E2ldId(d));
        }
        let mut g = b.build();
        apply_seed_labels(&mut g, |d| d.0 % malware_mod == 0, |e| e.0 % 5 == 1);
        for hidden in g.domain_indices() {
            let view = segugio_graph::HiddenLabelView::new(&g, hidden);
            prop_assert!(view.domain_label(hidden).is_unknown());
            for m in g.machine_indices() {
                let queried = g.domains_of(m).any(|d| d == hidden);
                if !queried {
                    prop_assert_eq!(view.machine_label(m), g.machine_label(m));
                }
            }
        }
    }
}
