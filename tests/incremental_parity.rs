//! Cross-day parity contract: with `SegugioConfig::incremental` on, the
//! [`Tracker`]'s day reports are bit-for-bit identical to the from-scratch
//! path — across an 8-day deployment, at every parallelism width, and under
//! randomized churn scenarios (DHCP lease churn, domain agility, heavier
//! blacklist turnover).

use segugio_core::{DayReport, SnapshotInput, Tracker, TrackerConfig};
use segugio_traffic::{IspConfig, IspNetwork};

/// Runs a full multi-day deployment and returns every day's report.
///
/// Each call builds its own network from `cfg`; identical configs generate
/// identical traffic, so two runs are comparable input-for-input.
fn run_tracker(
    cfg: &IspConfig,
    days: usize,
    incremental: bool,
    parallelism: Option<usize>,
    chunk_run_capacity: Option<usize>,
) -> Vec<DayReport> {
    let mut isp = IspNetwork::new(cfg.clone());
    isp.warm_up(16);
    let mut tracker = Tracker::new();
    let mut config = TrackerConfig {
        target_fpr: 0.02,
        ..TrackerConfig::default()
    };
    config.segugio.incremental = incremental;
    config.segugio.parallelism = parallelism;
    config.segugio.chunk_run_capacity = chunk_run_capacity;
    let mut reports = Vec::with_capacity(days);
    for _ in 0..days {
        let traffic = isp.next_day();
        let input = SnapshotInput {
            day: traffic.day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        reports.push(
            tracker
                .process_day(&input, isp.activity(), &config)
                .expect("warmed-up fixture seeds both classes"),
        );
    }
    reports
}

/// The acceptance scenario: eight consecutive days, from-scratch at width 1
/// as the reference, and both paths at widths 1, 2 and 4 matching it
/// report-for-report.
#[test]
fn eight_day_reports_match_at_every_width() {
    let cfg = IspConfig::tiny(90);
    let reference = run_tracker(&cfg, 8, false, Some(1), None);
    assert!(
        reference.iter().any(|r| !r.new_detections.is_empty()),
        "reference run must detect something for the comparison to mean anything"
    );

    for width in [1usize, 2, 4, 8] {
        let scratch = run_tracker(&cfg, 8, false, Some(width), None);
        assert_eq!(
            scratch, reference,
            "from-scratch reports diverged at width {width}"
        );
        let incremental = run_tracker(&cfg, 8, true, Some(width), None);
        assert_eq!(
            incremental, reference,
            "incremental reports diverged at width {width}"
        );
    }
}

/// The chunked (seal/spill/merge) CSR path is a drop-in replacement: a
/// tiny run capacity forces every from-scratch day through spilled runs
/// and `GraphBuilder::from_runs`, and the reports still match the
/// in-memory reference bit for bit.
#[test]
fn chunked_run_capacity_keeps_reports_identical() {
    let cfg = IspConfig::tiny(93);
    let reference = run_tracker(&cfg, 6, false, Some(1), None);
    assert!(
        reference.iter().any(|r| !r.new_detections.is_empty()),
        "reference run must detect something for the comparison to mean anything"
    );
    // ~8k queries/day at capacity 512 ⇒ a dozen-plus spilled runs per day.
    let chunked = run_tracker(&cfg, 6, false, Some(1), Some(512));
    assert_eq!(chunked, reference, "chunked CSR path diverged");
    // With incremental state on, only rebuild days route through the
    // chunked path; the mix must still be identical.
    let chunked_incremental = run_tracker(&cfg, 6, true, Some(1), Some(512));
    assert_eq!(
        chunked_incremental, reference,
        "chunked + incremental mix diverged"
    );
}

/// Randomized churn scenarios: heavy DHCP lease churn dilutes machine
/// identities day over day, maximum agility rotates control domains fast,
/// and aggressive blacklisting flips many domain labels between days —
/// each stresses a different layer of the delta path (graph merge, feature
/// cache, rolling abuse index).
#[test]
fn churn_scenarios_keep_paths_identical() {
    let scenarios: Vec<(&str, IspConfig)> = vec![
        (
            "dhcp-churn",
            IspConfig {
                dhcp_churn: 0.35,
                ..IspConfig::tiny(91)
            },
        ),
        (
            "agility-and-turnover",
            IspConfig {
                agility: 1.0,
                cnc_lifetime: (1, 3),
                blacklist_coverage: 0.95,
                blacklist_lag_mean: 1.0,
                ..IspConfig::tiny(92)
            },
        ),
    ];
    for (name, cfg) in scenarios {
        let scratch = run_tracker(&cfg, 7, false, Some(1), None);
        let incremental = run_tracker(&cfg, 7, true, Some(1), None);
        assert_eq!(incremental, scratch, "scenario `{name}` diverged");
    }
}
