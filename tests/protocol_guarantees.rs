//! Guarantees of the evaluation protocol: no ground-truth leakage, and no
//! time travel. These are the properties that make the reported numbers
//! trustworthy.

use std::collections::HashSet;

use segugio_core::{build_training_set, Segugio, SegugioConfig, SnapshotInput};
use segugio_eval::protocol::select_test_split;
use segugio_eval::Scenario;
use segugio_model::{Blacklist, Day, DomainName, DomainTable, Ipv4, Label, MachineId, Whitelist};
use segugio_pdns::PassiveDns;
use segugio_traffic::IspConfig;

#[test]
fn hidden_test_domains_never_reach_the_training_set() {
    let scenario = Scenario::run(IspConfig::tiny(61), 16, &[16]);
    let bl = scenario.isp().commercial_blacklist().clone();
    let split = select_test_split(&scenario, 16, &bl, 0.6, 0.4, 3);
    let hidden = split.hidden();
    let config = SegugioConfig::default();
    let snap = scenario.snapshot(16, &config, &bl, Some(&hidden));

    // 1. Training rows exclude every hidden domain.
    let (_, ids) = build_training_set(&snap, scenario.isp().activity(), &config);
    let train_ids: HashSet<_> = ids.into_iter().collect();
    for d in &hidden {
        assert!(
            !train_ids.contains(d),
            "hidden domain {d} leaked into the training set"
        );
    }

    // 2. Hidden domains surviving pruning are labeled unknown.
    for &d in &hidden {
        if let Some(idx) = snap.graph.domain_idx(d) {
            assert_eq!(snap.graph.domain_label(idx), Label::Unknown);
        }
    }

    // 3. No machine is labeled malware *solely* because of a hidden domain:
    //    every malware-labeled machine queries a non-hidden blacklisted
    //    domain.
    for m in snap.graph.machine_indices() {
        if snap.graph.machine_label(m) == Label::Malware {
            let has_visible_evidence = snap.graph.domains_of(m).any(|d| {
                let id = snap.graph.domain_id(d);
                bl.contains_as_of(id, Day(16)) && !hidden.contains(&id)
            });
            assert!(
                has_visible_evidence,
                "machine labeled malware without visible blacklist evidence"
            );
        }
    }
}

#[test]
fn future_records_never_influence_an_earlier_snapshot() {
    // Build a minimal world by hand with pDNS records both before and
    // after the snapshot day; the abuse index must only see the past.
    let mut table = DomainTable::new();
    let mal = table.intern(&DomainName::parse("evil.example").unwrap());
    let unknown = table.intern(&DomainName::parse("maybe.example").unwrap());
    let probe = table.intern(&DomainName::parse("probe.example").unwrap());

    let bad_ip = Ipv4::from_octets(45, 0, 0, 1);
    let future_ip = Ipv4::from_octets(45, 0, 0, 2);
    let mut pdns = PassiveDns::new();
    // Past: the malware domain used bad_ip.
    pdns.record(mal, bad_ip, Day(3));
    // Future (after the snapshot day): it also used future_ip.
    pdns.record(mal, future_ip, Day(20));

    let mut blacklist = Blacklist::new();
    blacklist.insert(mal, Day(1));
    // A second blacklist entry added *after* the snapshot day.
    blacklist.insert(unknown, Day(25));
    let whitelist = Whitelist::new();

    // `probe` resolves to both IPs on the snapshot day.
    let queries = vec![
        (MachineId(0), probe),
        (MachineId(1), probe),
        (MachineId(0), mal),
        (MachineId(1), mal),
        (MachineId(0), unknown),
        (MachineId(1), unknown),
    ];
    let resolutions = vec![(probe, vec![bad_ip, future_ip])];
    let mut config = SegugioConfig::default();
    config.prune.min_machine_degree = 0;
    config.prune.popular_fraction = 2.0;
    let input = SnapshotInput {
        day: Day(10),
        queries: &queries,
        resolutions: &resolutions,
        table: &table,
        pdns: &pdns,
        blacklist: &blacklist,
        whitelist: &whitelist,
        hidden: None,
    };
    let snap = Segugio::build_snapshot(&input, &config);

    // The abuse index saw the past record only.
    assert!(snap.abuse.is_malware_ip(bad_ip));
    assert!(
        !snap.abuse.is_malware_ip(future_ip),
        "a record from day 20 leaked into the day-10 abuse index"
    );

    // A domain blacklisted on day 25 is unknown on day 10.
    let u = snap.graph.domain_idx(unknown).unwrap();
    assert_eq!(snap.graph.domain_label(u), Label::Unknown);
    let m = snap.graph.domain_idx(mal).unwrap();
    assert_eq!(snap.graph.domain_label(m), Label::Malware);
}
