//! Integration: the real-data path (export → ingest → detect) produces the
//! same detection quality as the in-memory path.

use segugio_core::{Segugio, SegugioConfig, SnapshotInput};
use segugio_ingest::{export_day, LogCollector};
use segugio_model::{Blacklist, Whitelist};
use segugio_traffic::{IspConfig, IspNetwork};

#[test]
fn exported_logs_reproduce_in_memory_detections() {
    let mut isp = IspNetwork::new(IspConfig::tiny(77));
    isp.warm_up(16);
    let day = isp.next_day();

    // --- In-memory path. ---
    let config = SegugioConfig::default();
    let input = SnapshotInput {
        day: day.day,
        queries: &day.queries,
        resolutions: &day.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);

    // --- Round-tripped path. ---
    let text = export_day(isp.table(), day.day.0, &day.queries, &day.resolutions);
    let mut collector = LogCollector::new();
    collector.ingest_reader(text.as_bytes()).unwrap();
    let ingested = collector.day(day.day).unwrap();

    // Remap the seed lists onto the collector's table by name.
    let mut blacklist = Blacklist::new();
    for (d, added) in isp.commercial_blacklist().iter() {
        if let Some(id) = collector.table().get(isp.table().name(d)) {
            blacklist.insert(id, added);
        }
    }
    let mut whitelist = Whitelist::new();
    for e in isp.whitelist().iter() {
        if let Some(id) = collector.table().e2ld_id(isp.table().e2ld_str(e)) {
            whitelist.insert(id);
        }
    }
    let input = SnapshotInput {
        day: day.day,
        queries: &ingested.queries,
        resolutions: &ingested.resolutions,
        table: collector.table(),
        pdns: collector.pdns(),
        blacklist: &blacklist,
        whitelist: &whitelist,
        hidden: None,
    };
    let snapshot2 = Segugio::build_snapshot(&input, &config);

    // Same graph shape (ids differ; counts must match exactly).
    assert_eq!(snapshot2.unpruned_counts, snapshot.unpruned_counts);
    assert_eq!(
        snapshot2.unpruned_domain_labels,
        snapshot.unpruned_domain_labels
    );
    assert_eq!(
        snapshot2.graph.machine_count(),
        snapshot.graph.machine_count()
    );
    assert_eq!(
        snapshot2.graph.domain_count(),
        snapshot.graph.domain_count()
    );
    assert_eq!(snapshot2.graph.edge_count(), snapshot.graph.edge_count());

    // Same detections by *name* (the ingested side only has the one day of
    // history, so compare the F1-driven ranking: top-decile overlap).
    let model = Segugio::train(&snapshot, isp.activity(), &config)
        .expect("training day seeds both classes");
    let model2 = Segugio::train(&snapshot2, collector.activity(), &config)
        .expect("training day seeds both classes");
    let top: std::collections::HashSet<String> = model
        .score_unknown(&snapshot, isp.activity())
        .iter()
        .take(20)
        .map(|d| isp.table().name(d.domain).as_str().to_owned())
        .collect();
    let top2: std::collections::HashSet<String> = model2
        .score_unknown(&snapshot2, collector.activity())
        .iter()
        .take(20)
        .map(|d| collector.table().name(d.domain).as_str().to_owned())
        .collect();
    let overlap = top.intersection(&top2).count();
    assert!(
        overlap >= 10,
        "top-20 detections should largely agree across paths, got {overlap}/20"
    );
}
