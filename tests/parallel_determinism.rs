//! The parallel pipeline's contract: output is bit-for-bit identical at
//! every `parallelism` setting — serial `Some(1)`, pinned `Some(2)` /
//! `Some(4)`, and the auto default — across snapshot building, training,
//! and scoring.

use segugio_core::{build_training_set, Segugio, SegugioConfig, SnapshotInput};
use segugio_traffic::{IspConfig, IspNetwork};

/// One full day: snapshot → training set → model → detections, at a given
/// parallelism. Returns the serialized model and every scored detection.
fn run_day(parallelism: Option<usize>) -> (String, Vec<(u32, f32)>, usize, Vec<f32>) {
    let mut isp = IspNetwork::new(IspConfig::tiny(77));
    isp.warm_up(16);
    let traffic = isp.next_day();
    let config = SegugioConfig {
        parallelism,
        ..SegugioConfig::default()
    };
    let input = SnapshotInput {
        day: traffic.day,
        queries: &traffic.queries,
        resolutions: &traffic.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);
    let (train_set, ids) = build_training_set(&snapshot, isp.activity(), &config);
    let model = Segugio::train_prepared(&train_set, &config).expect("fixture seeds both classes");
    let detections = model
        .score_unknown(&snapshot, isp.activity())
        .into_iter()
        .map(|d| (d.domain.0, d.score))
        .collect();
    let train_scores: Vec<f32> = (0..train_set.len())
        .map(|i| model.score_features(train_set.row(i)))
        .collect();
    (model.save_to_string(), detections, ids.len(), train_scores)
}

#[test]
fn parallel_pipeline_is_bit_identical_to_serial() {
    let (serial_model, serial_detections, serial_rows, serial_scores) = run_day(Some(1));
    assert!(
        !serial_detections.is_empty(),
        "fixture must score something"
    );
    assert!(serial_rows > 0, "fixture must have known training domains");

    for knob in [Some(2), Some(4), None] {
        let (model, detections, rows, scores) = run_day(knob);
        assert_eq!(rows, serial_rows, "training rows differ at {knob:?}");
        assert_eq!(
            model, serial_model,
            "trained model differs from serial at {knob:?}"
        );
        assert_eq!(
            scores, serial_scores,
            "trained-model scores differ from serial at {knob:?}"
        );
        assert_eq!(
            detections, serial_detections,
            "detections differ from serial at {knob:?}"
        );
    }
}

#[test]
fn snapshot_build_is_identical_at_any_parallelism() {
    let mut isp = IspNetwork::new(IspConfig::tiny(78));
    isp.warm_up(12);
    let traffic = isp.next_day();
    let input = SnapshotInput {
        day: traffic.day,
        queries: &traffic.queries,
        resolutions: &traffic.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    };
    let serial = Segugio::build_snapshot(
        &input,
        &SegugioConfig {
            parallelism: Some(1),
            ..SegugioConfig::default()
        },
    );
    for threads in [2usize, 4, 8] {
        let parallel = Segugio::build_snapshot(
            &input,
            &SegugioConfig {
                parallelism: Some(threads),
                ..SegugioConfig::default()
            },
        );
        assert_eq!(parallel.graph.machine_count(), serial.graph.machine_count());
        assert_eq!(parallel.graph.domain_count(), serial.graph.domain_count());
        assert_eq!(parallel.graph.edge_count(), serial.graph.edge_count());
        for d in serial.graph.domain_indices() {
            assert_eq!(
                parallel.graph.machines_of(d).collect::<Vec<_>>(),
                serial.graph.machines_of(d).collect::<Vec<_>>(),
                "domain adjacency differs at {threads} threads"
            );
        }
        for m in serial.graph.machine_indices() {
            assert_eq!(
                parallel.graph.domains_of(m).collect::<Vec<_>>(),
                serial.graph.domains_of(m).collect::<Vec<_>>(),
                "machine adjacency differs at {threads} threads"
            );
        }
    }
}
