//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the benchmarking surface its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Each
//! benchmark runs `sample_size` timed iterations after one warm-up and
//! prints mean / median / min wall-clock time per iteration. There is no
//! statistical outlier analysis or HTML report — numbers go to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark (builder form,
    /// used in `criterion_group!` config expressions).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after one warm-up run.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<56} (no samples: bencher.iter was not called)");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    println!(
        "{id:<56} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(min),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("smoke/group");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 7)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(4);
        targets = target
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
