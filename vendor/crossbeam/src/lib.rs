//! Offline shim of the `crossbeam` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so `crossbeam::thread`
//! is provided as a thin wrapper over `std::thread::scope` (stable since
//! Rust 1.63). Semantics match what the workspace relies on: scoped
//! spawning that may borrow from the enclosing stack, automatic join at
//! scope exit, and panic propagation.

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// The error type of [`scope`]: the payload of a panicked child thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; closures passed to [`Scope::spawn`] receive a copy,
    /// matching the crossbeam signature `FnOnce(&Scope) -> T`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope in which borrowed scoped threads can be spawned;
    /// all threads are joined before `scope` returns.
    ///
    /// `std::thread::scope` already resumes unwinding in the parent when a
    /// child panics, so the `Err` variant is never produced; it exists for
    /// signature compatibility with `crossbeam::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u32, 2, 3, 4];
        let mut results = vec![0u32; 4];
        thread::scope(|s| {
            for (slot, &v) in results.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *slot = v * 10;
                });
            }
        })
        .expect("no panics");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn nested_spawn_via_scope_handle() {
        let out = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
