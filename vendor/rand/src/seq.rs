//! Sequence helpers: shuffling, choosing, and distinct index sampling.

use crate::Rng;

/// Unbiased uniform index in `[low, ubound)` for possibly-unsized rngs.
fn gen_index<R: Rng + ?Sized>(rng: &mut R, low: usize, ubound: usize) -> usize {
    debug_assert!(low < ubound);
    let span = (ubound - low) as u64;
    if span == 1 {
        return low;
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return low + (v % span) as usize;
        }
    }
}

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, 0, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, 0, self.len())])
        }
    }
}

pub mod index {
    use crate::Rng;

    /// A set of sampled indices (`rand::seq::index::IndexVec` subset).
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Converts into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    /// Samples `amount` distinct indices from `0..length` (partial
    /// Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from {length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = super::gen_index(rng, i, length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}
