//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`] and
//! [`seq::index::sample`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256** (seeded via SplitMix64), which is deterministic and
//! high-quality but intentionally *not* stream-compatible with upstream
//! `rand`; everything in this workspace that depends on reproducibility
//! seeds its own RNG, so only the streams differ, not correctness.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Returns a uniformly random value within `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience entry point as upstream `rand`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(5..=6u8);
            assert!((5..=6).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn index_sample_is_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let idx = super::seq::index::sample(&mut rng, 11, 4).into_vec();
            assert_eq!(idx.len(), 4);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "indices must be distinct");
            assert!(idx.iter().all(|&i| i < 11));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
