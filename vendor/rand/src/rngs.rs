//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Not stream-compatible with upstream `rand::rngs::StdRng` (ChaCha12) —
/// only determinism per seed is guaranteed, which is all the workspace
/// relies on.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
            for w in &mut s {
                *w = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}
