//! Standard and uniform distributions for the vendored `rand` subset.

use crate::Rng;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: full range for integers, `[0, 1)`
/// for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 random mantissa bits, uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`. `high` must be greater than
    /// `low`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`. `high` must not be below `low`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every integer type we support except the full
    // u64/u128 span, which the callers here never request.
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit: $t = Standard.sample(rng);
                let v = low + unit * (high - low);
                // Guard against rounding up to the excluded endpoint.
                if v < high { v } else { <$t>::from_bits(high.to_bits() - 1) }
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit: $t = Standard.sample(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}
