//! The case-running harness behind the [`crate::proptest!`] macro.

use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

fn cases_from_env() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Runs `body` over `cases` generated inputs; panics on the first failing
/// case with the generated value attached (no shrinking).
pub fn run_cases<S, F>(test_name: &str, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let cases = cases_from_env();
    // Deterministic per-test seed, independent of declaration order.
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut hasher);
    let mut rng = StdRng::seed_from_u64(hasher.finish() ^ 0x5EED_CA5E_5EED_CA5E);

    let max_rejects = cases * 100;
    let mut rejects = 0usize;
    let mut ran = 0usize;
    while ran < cases {
        let Some(value) = strategy.try_generate(&mut rng) else {
            rejects += 1;
            assert!(
                rejects <= max_rejects,
                "{test_name}: too many strategy rejections ({rejects}) — filter too strict?"
            );
            continue;
        };
        let shown = format!("{value:?}");
        match body(value) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "{test_name}: too many prop_assume rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property falsified after {ran} passing case(s)\n\
                     {msg}\ninput: {shown}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn harness_runs_and_holds(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn failing_property_panics() {
        crate::test_runner::run_cases("fail", &(0u32..10), |x| {
            prop_assert!(x > 100_000);
            Ok(())
        });
    }
}
