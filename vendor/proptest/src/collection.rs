//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// The size argument of collection strategies (a `usize` range or an
/// exact count).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for vectors whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// How often a rejecting element strategy is retried before the whole
/// collection draw is counted as one rejection.
const ELEMENT_RETRIES: usize = 50;

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn try_generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = (0..ELEMENT_RETRIES).find_map(|_| self.element.try_generate(rng))?;
            out.push(v);
        }
        Some(out)
    }
}

/// Strategy for hash sets whose elements come from `element`. The set size
/// lands in `size`; if the element domain is too small to reach the drawn
/// size, the draw counts as a rejection.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn try_generate(&self, rng: &mut StdRng) -> Option<HashSet<S::Value>> {
        let target = rng.gen_range(self.size.min..=self.size.max);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target {
            attempts += 1;
            if attempts > target * ELEMENT_RETRIES + ELEMENT_RETRIES {
                return None;
            }
            if let Some(v) = self.element.try_generate(rng) {
                out.insert(v);
            }
        }
        Some(out)
    }
}
