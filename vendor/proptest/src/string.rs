//! Tiny regex-subset generator behind `&str` strategies.
//!
//! Supports exactly the shape the workspace tests use: a sequence of
//! atoms, where an atom is a character class `[...]` (literal characters
//! and `a-z` style ranges; `-` last in the class is literal) or a single
//! literal character, optionally followed by a `{m}` or `{m,n}`
//! quantifier. Anything else panics with a clear message so a future test
//! author knows to extend the subset.

use rand::rngs::StdRng;
use rand::Rng;

#[derive(Debug, Clone)]
struct Atom {
    /// Candidate characters (expanded from the class or the literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut StdRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in regex strategy {pattern:?}"))
                    + i;
                let set = expand_class(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '\\' => {
                let lit = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex strategy {pattern:?}"));
                i += 2;
                vec![lit]
            }
            c if c.is_alphanumeric() || c == '-' || c == '.' || c == '_' => {
                i += 1;
                vec![c]
            }
            c => panic!("unsupported regex construct {c:?} in strategy {pattern:?}"),
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed quantifier in regex strategy {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "empty quantifier in regex strategy {pattern:?}");
        atoms.push(Atom {
            chars: candidates,
            min,
            max,
        });
    }
    atoms
}

fn expand_class(body: &[char], pattern: &str) -> Vec<char> {
    assert!(
        !body.is_empty(),
        "empty class in regex strategy {pattern:?}"
    );
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            assert!(lo <= hi, "inverted range in regex strategy {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_matching_strings() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = generate_matching("[a-z][a-z0-9-]{0,14}[a-z0-9]", &mut rng);
            assert!((2..=16).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(!s.ends_with('-'));
        }
    }

    #[test]
    fn literal_and_fixed_quantifier() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = generate_matching("a[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('a'));
        assert!(s[1..].chars().all(|c| c.is_ascii_digit()));
    }
}
