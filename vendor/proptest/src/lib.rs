//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `proptest` its tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_filter_map`, range / tuple / regex-literal strategies, [`any`],
//! and [`collection::vec`] / [`collection::hash_set`].
//!
//! Differences from upstream: no shrinking (failing inputs are reported
//! as generated), a fixed deterministic seed per test function, and a
//! default of 64 cases per property (override with `PROPTEST_CASES`).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*` imports.
    pub use crate::strategy::{any, Any, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Any, Strategy};

/// Asserts a condition inside a property, failing the current case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case (counted as a rejection, not a failure)
/// unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let strategies = ($($strat,)+);
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategies,
                    |case| {
                        let ($($arg,)+) = case;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
