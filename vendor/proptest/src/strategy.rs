//! The [`Strategy`] trait and primitive strategies.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::distributions::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test values.
///
/// Unlike upstream proptest there is no shrinking: `try_generate` either
/// produces a value or reports a rejection (`None`, e.g. a filter miss).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug + Clone;

    /// Attempts to generate one value.
    fn try_generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `f` returns false. `whence` labels the
    /// filter in rejection reports.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _whence: whence,
            f,
        }
    }

    /// Combined map + filter: `f` returning `None` rejects the value.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: Debug + Clone,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            _whence: whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn try_generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.try_generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn try_generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.try_generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    _whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn try_generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.try_generate(rng).and_then(&self.f)
    }
}

// --- primitive strategies ---

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Debug + Clone,
    std::ops::Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + Debug + Clone,
    std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(rng.gen_range(self.clone()))
    }
}

/// Regex-literal strategies: `"[a-z]{1,8}"` generates matching strings.
/// Only the character-class + quantifier subset the workspace tests use
/// is supported (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn try_generate(&self, rng: &mut StdRng) -> Option<String> {
        Some(crate::string::generate_matching(self, rng))
    }
}

/// A strategy producing any value of a primitive type; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The `proptest::prelude::any::<T>()` entry point for primitive types.
pub fn any<T: ArbitraryPrimitive>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryPrimitive> Strategy for Any<T> {
    type Value = T;

    fn try_generate(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// Primitive types [`any`] can generate.
pub trait ArbitraryPrimitive: Debug + Clone {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryPrimitive for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore as _;
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryPrimitive for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl ArbitraryPrimitive for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f32>()
    }
}

impl ArbitraryPrimitive for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

// --- tuple strategies ---

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn try_generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.try_generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
