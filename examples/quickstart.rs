//! Quickstart: simulate a small ISP, train Segugio on one day of DNS
//! traffic, and rank the unknown domains of the next day by malware score.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use segugio_core::{Segugio, SegugioConfig, SnapshotInput};
use segugio_traffic::{IspConfig, IspNetwork};

fn main() {
    // A ~3k-machine network with 20 days of history (passive DNS + domain
    // activity) accumulated before the first observed day.
    let mut isp = IspNetwork::new(IspConfig::small(7));
    isp.warm_up(20);

    let config = SegugioConfig::default();

    // Day 20: build the machine-domain behavior graph, label it from the
    // blacklist/whitelist, prune it, and train the behavior classifier.
    let train_day = isp.next_day();
    let input = SnapshotInput {
        day: train_day.day,
        queries: &train_day.queries,
        resolutions: &train_day.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);
    println!(
        "train day {}: {} machines, {} domains, {} edges after pruning",
        snapshot.day().0,
        snapshot.graph.machine_count(),
        snapshot.graph.domain_count(),
        snapshot.graph.edge_count(),
    );
    let model = Segugio::train(&snapshot, isp.activity(), &config)
        .expect("training day seeds both classes");

    // Day 21: score every still-unknown domain.
    let test_day = isp.next_day();
    let input = SnapshotInput {
        day: test_day.day,
        queries: &test_day.queries,
        resolutions: &test_day.resolutions,
        table: isp.table(),
        pdns: isp.pdns(),
        blacklist: isp.commercial_blacklist(),
        whitelist: isp.whitelist(),
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);
    let detections = model.score_unknown(&snapshot, isp.activity());

    println!(
        "\ntop 15 unknown domains by malware score (day {}):",
        test_day.day.0
    );
    println!("{:<40} {:>7}  ground truth", "domain", "score");
    for det in detections.iter().take(15) {
        let name = isp.table().name(det.domain);
        let truth = if isp.truth().is_malicious(det.domain) {
            "malware-control"
        } else {
            "benign"
        };
        println!("{:<40} {:>7.3}  {}", name.as_str(), det.score, truth);
    }

    let top20_hits = detections
        .iter()
        .take(20)
        .filter(|d| isp.truth().is_malicious(d.domain))
        .count();
    println!("\n{top20_hits} of the top 20 are confirmed malware-control domains");
}
