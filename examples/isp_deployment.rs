//! ISP deployment loop: the workflow a network operator would run.
//!
//! Each morning the previous day's DNS traffic is summarized into a
//! behavior graph; the classifier is retrained on the current blacklist
//! knowledge; unknown domains above the operating threshold are reported
//! together with the machines that queried them (candidate infections to
//! remediate).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example isp_deployment
//! ```

use segugio_core::{Detector, Segugio, SegugioConfig, SnapshotInput};
use segugio_ml::RocCurve;
use segugio_traffic::{IspConfig, IspNetwork};

fn main() {
    let mut isp = IspNetwork::new(IspConfig::small(17));
    isp.warm_up(20);
    // `parallelism: None` fans the daily pipeline (graph build, feature
    // measurement, forest training, scoring) over every available core;
    // detections are identical to a `Some(1)` serial run.
    let config = SegugioConfig {
        parallelism: None,
        ..SegugioConfig::default()
    };

    for _ in 0..4 {
        let traffic = isp.next_day();
        let day = traffic.day;
        let input = SnapshotInput {
            day,
            queries: &traffic.queries,
            resolutions: &traffic.resolutions,
            table: isp.table(),
            pdns: isp.pdns(),
            blacklist: isp.commercial_blacklist(),
            whitelist: isp.whitelist(),
            hidden: None,
        };
        let snapshot = Segugio::build_snapshot(&input, &config);

        // Calibrate an operating threshold on the training scores: rank the
        // known domains through the label-hiding path and pick the score
        // that keeps known-benign mistakes below 0.5%. The training set is
        // extracted once and shared between training and calibration.
        let (train_set, _) = segugio_core::build_training_set(&snapshot, isp.activity(), &config);
        let model = Segugio::train_prepared(&train_set, &config)
            .expect("warmed-up simulation seeds both classes");
        let scores: Vec<f32> = (0..train_set.len())
            .map(|i| model.score_features(train_set.row(i)))
            .collect();
        let roc = RocCurve::from_scores(&scores, train_set.labels());
        let detector = Detector::with_target_fpr(model, &roc, 0.005);

        let detections = detector.detect(&snapshot, isp.activity());
        let machines = detector.implied_infections(&snapshot, &detections);
        let confirmed = detections
            .iter()
            .filter(|d| isp.truth().is_malicious(d.domain))
            .count();
        println!(
            "day {:>2}: {:>3} domains flagged (threshold {:.2}), {:>3} truly \
             malicious, {:>3} machines implicated",
            day.0,
            detections.len(),
            detector.threshold(),
            confirmed,
            machines.len(),
        );
        for det in detections.iter().take(5) {
            println!(
                "        {:<44} score {:.3}",
                isp.table().name(det.domain).as_str(),
                det.score
            );
        }
    }
}
