//! Real-log workflow: how a deployment would feed its *own* resolver logs
//! into Segugio.
//!
//! The example exports two days of simulated traffic into the TSV log
//! format (stand-in for your resolver's logs), parses them back with
//! `segugio-ingest` — exactly what you would do with real data — and runs
//! training + detection on the ingested structures.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ingest_logs
//! ```

use segugio_core::{Segugio, SegugioConfig, SnapshotInput};
use segugio_ingest::{export_day, LogCollector};
use segugio_traffic::{IspConfig, IspNetwork};

fn main() {
    // --- Produce "real" logs (your resolver would write these). ---
    let mut isp = IspNetwork::new(IspConfig::small(31));
    isp.warm_up(18);
    let mut log_text = String::new();
    for _ in 0..2 {
        let day = isp.next_day();
        log_text.push_str(&export_day(
            isp.table(),
            day.day.0,
            &day.queries,
            &day.resolutions,
        ));
    }
    println!(
        "exported {} log lines ({} MiB)",
        log_text.lines().count(),
        log_text.len() / (1 << 20)
    );

    // --- Ingest them, as a deployment would. ---
    let mut collector = LogCollector::new();
    let ingested = collector
        .ingest_reader(log_text.as_bytes())
        .expect("well-formed log");
    println!(
        "ingested {ingested} records: {} machines, {} domains, days {:?}",
        collector.machine_count(),
        collector.table().len(),
        collector.days().iter().map(|d| d.0).collect::<Vec<_>>()
    );

    // Ground-truth seeds. With real data these come from your blacklist
    // feed and whitelist; here we map the simulator's lists onto the
    // collector's interned table by name.
    let mut blacklist = segugio_model::Blacklist::new();
    for (domain, added) in isp.commercial_blacklist().iter() {
        let name = isp.table().name(domain);
        if let Some(id) = collector.table().get(name) {
            blacklist.insert(id, added);
        }
    }
    let mut whitelist = segugio_model::Whitelist::new();
    for e2ld in isp.whitelist().iter() {
        if let Some(id) = collector.table().e2ld_id(isp.table().e2ld_str(e2ld)) {
            whitelist.insert(id);
        }
    }

    // --- Train on the first ingested day, detect on the second. ---
    let days = collector.days();
    let config = SegugioConfig::default();
    let train = collector.day(days[0]).unwrap();
    let input = SnapshotInput {
        day: days[0],
        queries: &train.queries,
        resolutions: &train.resolutions,
        table: collector.table(),
        pdns: collector.pdns(),
        blacklist: &blacklist,
        whitelist: &whitelist,
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);
    let model = Segugio::train(&snapshot, collector.activity(), &config)
        .expect("training day seeds both classes");

    let test = collector.day(days[1]).unwrap();
    let input = SnapshotInput {
        day: days[1],
        queries: &test.queries,
        resolutions: &test.resolutions,
        table: collector.table(),
        pdns: collector.pdns(),
        blacklist: &blacklist,
        whitelist: &whitelist,
        hidden: None,
    };
    let snapshot = Segugio::build_snapshot(&input, &config);
    let detections = model.score_unknown(&snapshot, collector.activity());
    println!("\ntop 10 detections from ingested logs:");
    for det in detections.iter().take(10) {
        println!(
            "  {:<44} score {:.3}",
            collector.table().name(det.domain).as_str(),
            det.score
        );
    }
}
