//! Baseline shoot-out: Segugio versus loopy belief propagation, the
//! co-occurrence heuristic, and the Notos-style reputation system, on the
//! same synthetic ISP (the Fig. 12 / Section I comparisons at interactive
//! scale).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use segugio_eval::experiments::{bp_comparison, notos_comparison, Scale};

fn main() {
    let scale = Scale::small();

    println!("=== Loopy BP / co-occurrence comparison (one cross-day pair) ===");
    let bp = bp_comparison::run(&scale);
    println!("{bp}");

    println!("=== Notos comparison (new domains blacklisted after training) ===");
    let notos = notos_comparison::run(&scale, 14);
    println!("{notos}");
}
