//! Early warning: how many days of head start does Segugio buy over the
//! blacklist? Reproduces the Fig. 11 experiment at interactive scale.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example early_warning
//! ```

use segugio_eval::experiments::{early_detection, Scale};

fn main() {
    let scale = Scale::small();
    // Four monitored days per network, 35-day blacklist lookahead, 0.5% FP
    // operating point.
    let report = early_detection::run(&scale, 4, 35, 0.005);
    println!("{report}");
    println!(
        "interpretation: each detection above was flagged by Segugio while \
         still absent from the blacklist; the gap column is the number of \
         days until the blacklist caught up."
    );
}
